"""Tick-based micro-batch scheduler: queue, coalesce, flush, fan out.

:class:`MicroBatchScheduler` is the heart of :mod:`repro.serve`.  Many
callers (threads or asyncio tasks) submit small independent cost
queries; a single background *flusher* thread drains them in
micro-batches and prices each batch with as few vectorized evaluations
as the traffic allows:

1. **Tick** — a flush fires when ``max_batch_size`` requests are
   pending *or* the oldest pending request has waited ``max_wait_s``,
   whichever comes first.  An idle scheduler sleeps on a condition
   variable; the first submit after idle starts the tick clock.
2. **Coalesce** — drained requests are grouped by model
   :meth:`~repro.serve.query.CostQuery.signature`; identical
   ``(N_tr, λ)`` points within a group are deduplicated, and every
   waiter receives its own result view (dedup is invisible to
   callers).
3. **Execute** — each group runs through
   :func:`repro.serve.executor.execute_group`: vectorized where the
   batch engine is bit-exact, scalar-parity elsewhere, chunked across
   the optional worker pool when a flush is very large, and always
   reusing the shared :class:`~repro.batch.cache.BatchCache`.
4. **Fan out** — tickets are completed under one condition broadcast
   per flush (no per-request locks on the hot path), and registered
   callbacks (the asyncio bridge) fire after completion.

Backpressure is explicit: the pending queue is bounded by
``max_queue_depth`` and :meth:`submit` either blocks for space (up to
a timeout) or raises :class:`~repro.errors.BackpressureError`
immediately when ``timeout=0``.

Observability (:mod:`repro.obs`, off by default): a ``serve.flush``
span per flush; counters ``serve.requests`` / ``serve.flushes`` /
``serve.groups`` / ``serve.dedup.duplicates`` / ``serve.chunks``;
gauge ``serve.queue.depth``; histograms ``serve.flush.occupancy``,
``serve.flush.seconds`` and ``serve.request.latency_seconds``.  Every
hook is guarded so the disabled-observability overhead stays inside
the < 3% contract of ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from ..batch.cache import BatchCache
from ..batch.engine import USE_DEFAULT_CACHE, _resolve_cache
from ..errors import (
    BackpressureError,
    ParameterError,
    ServiceClosedError,
)
from ..obs import metrics as _metrics, span as _span
from ..obs.state import enabled as _obs_enabled
from .executor import GroupResult, execute_group, n_chunks
from .query import CostQuery, ServedCost

__all__ = ["CostTicket", "MicroBatchScheduler"]

_PENDING = 0
_DONE = 1
_FAILED = 2


class CostTicket:
    """A claim on one submitted query's future result.

    Created by :meth:`MicroBatchScheduler.submit`; completed by the
    flusher.  :meth:`result` / :meth:`cost` block until the owning
    flush lands (all waiters share one scheduler-level condition, so a
    ticket costs an object and two attribute writes, not a lock and an
    event).  ``add_done_callback`` is the asyncio bridge: callbacks
    run on the flusher thread right after completion.
    """

    __slots__ = ("query", "_scheduler", "_state", "_group", "_slot",
                 "_exc", "_callbacks", "_t_submit")

    def __init__(self, query: CostQuery, scheduler: "MicroBatchScheduler",
                 t_submit: float) -> None:
        self.query = query
        self._scheduler = scheduler
        self._state = _PENDING
        self._group: GroupResult | None = None
        self._slot = -1
        self._exc: BaseException | None = None
        self._callbacks: list[Callable[["CostTicket"], None]] | None = None
        self._t_submit = t_submit

    def done(self) -> bool:
        """True once the owning flush has completed (or failed)."""
        return self._state != _PENDING

    def _wait(self, timeout: float | None) -> None:
        if self._state != _PENDING:
            return
        cond = self._scheduler._done_cond
        deadline = None if timeout is None else time.monotonic() + timeout
        with cond:
            while self._state == _PENDING:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        "query result not ready within timeout")
                cond.wait(remaining)

    def result(self, timeout: float | None = None) -> ServedCost:
        """The full served breakdown (blocks until the flush lands)."""
        self._wait(timeout)
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        assert self._group is not None
        return self._group.served(self._slot)

    def cost(self, timeout: float | None = None) -> float:
        """Just C_tr in dollars (blocks until the flush lands)."""
        self._wait(timeout)
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        assert self._group is not None
        return self._group.cost(self._slot)

    def add_done_callback(self,
                          fn: Callable[["CostTicket"], None]) -> None:
        """Run ``fn(ticket)`` once completed (immediately if already)."""
        with self._scheduler._done_cond:
            if self._state == _PENDING:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        fn(self)


class _Group:
    """One signature's share of a flush: unique points + member tickets."""

    __slots__ = ("exemplar", "points", "index", "members")

    def __init__(self, exemplar: CostQuery) -> None:
        self.exemplar = exemplar
        self.points: list[tuple[float, float]] = []
        self.index: dict[tuple[float, float], int] = {}
        self.members: list[CostTicket] = []


class MicroBatchScheduler:
    """Aggregates small cost queries into few vectorized evaluations.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many requests are pending.
    max_wait_s:
        Flush when the oldest pending request has waited this long,
        even if the batch is not full — bounds added latency.
    max_queue_depth:
        Bound on pending requests; beyond it submits block or raise
        :class:`~repro.errors.BackpressureError`.
    chunk_size, workers:
        Flushes whose unique-point count exceeds ``chunk_size`` are
        split across a pool of ``workers`` threads (``workers=1``
        executes inline).
    cache:
        The :class:`~repro.batch.cache.BatchCache` shared by every
        flush (and safely by other users — it is thread-safe).
        Defaults to the process-wide cache; pass ``None`` to disable.
    """

    def __init__(self, *, max_batch_size: int = 256,
                 max_wait_s: float = 0.002,
                 max_queue_depth: int = 10_000,
                 chunk_size: int = 4096,
                 workers: int = 1,
                 cache: Any = USE_DEFAULT_CACHE) -> None:
        if max_batch_size < 1:
            raise ParameterError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ParameterError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue_depth < max_batch_size:
            raise ParameterError(
                f"max_queue_depth ({max_queue_depth}) must be >= "
                f"max_batch_size ({max_batch_size})")
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue_depth = max_queue_depth
        self.chunk_size = chunk_size
        self.workers = workers
        self.cache: BatchCache | None = _resolve_cache(cache)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._done_cond = threading.Condition(threading.Lock())
        self._pending: list[CostTicket] = []
        self._oldest_enqueued = 0.0
        self._closing = False
        self._started = False
        self._thread: threading.Thread | None = None
        self._pool: ThreadPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MicroBatchScheduler":
        """Start the flusher thread (idempotent)."""
        with self._lock:
            if self._closing:
                raise ServiceClosedError("scheduler already closed")
            if self._started:
                return self
            self._started = True
        if self.workers > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-serve-worker")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-flusher",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, flush every pending request, join (idempotent)."""
        with self._lock:
            if self._closing:
                thread = None
            else:
                self._closing = True
                thread = self._thread
            self._work.notify_all()
            self._space.notify_all()
        if thread is not None:
            thread.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Number of requests currently pending (pre-flush)."""
        with self._lock:
            return len(self._pending)

    # -- submission ------------------------------------------------------

    def submit(self, query: CostQuery, *,
               timeout: float | None = None) -> CostTicket:
        """Enqueue one query; returns its :class:`CostTicket`.

        Blocks while the queue is full: forever with ``timeout=None``,
        up to ``timeout`` seconds otherwise (``timeout=0`` never
        blocks).  Raises :class:`~repro.errors.BackpressureError` when
        space does not free up in time, and
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`.
        """
        return self._submit_all((query,), timeout)[0]

    def submit_many(self, queries: Iterable[CostQuery], *,
                    timeout: float | None = None) -> list[CostTicket]:
        """Enqueue many queries with one lock acquisition per space wait.

        The bulk analog of :meth:`submit` — the fast path for
        sweep-shaped callers.  Queries are enqueued in order; if the
        queue fills mid-way the call blocks for space (the flusher is
        draining on the other side), so a partial enqueue only remains
        on timeout, in which case the raised
        :class:`~repro.errors.BackpressureError` carries the already
        issued tickets in its ``tickets`` attribute.

        Bulk submissions skip the ``max_wait_s`` tick: the grace
        period exists so independent single submits can coalesce, and
        a sweep arrives pre-coalesced, so the flusher drains it
        immediately rather than idling out the deadline.
        """
        return self._submit_all(tuple(queries), timeout)

    def _submit_all(self, queries: Sequence[CostQuery],
                    timeout: float | None) -> list[CostTicket]:
        if not self._started:
            self.start()
        obs_on = _obs_enabled()
        now = time.monotonic()
        t_submit = time.perf_counter() if obs_on else 0.0
        tickets: list[CostTicket] = []
        deadline = None if timeout is None else now + timeout
        i = 0
        with self._lock:
            while i < len(queries):
                if self._closing:
                    raise ServiceClosedError(
                        "scheduler is closed to new queries")
                free = self.max_queue_depth - len(self._pending)
                if free <= 0:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        exc = BackpressureError(
                            f"queue full ({self.max_queue_depth} pending); "
                            f"enqueued {i} of {len(queries)} queries")
                        exc.tickets = tickets
                        raise exc
                    self._space.wait(remaining)
                    continue
                was_empty = not self._pending
                for query in queries[i:i + free]:
                    ticket = CostTicket(query, self, t_submit)
                    self._pending.append(ticket)
                    tickets.append(ticket)
                    i += 1
                if len(queries) > 1:
                    # A bulk submission is already coalesced — the tick
                    # grace period exists to let *independent* single
                    # submits pile up, so a sweep's deadline is born
                    # expired and the flusher drains it immediately.
                    self._oldest_enqueued = now - self.max_wait_s
                    self._work.notify()
                elif was_empty:
                    self._oldest_enqueued = time.monotonic()
                    self._work.notify()
                elif len(self._pending) >= self.max_batch_size:
                    self._work.notify()
        if obs_on:
            _metrics.inc("serve.requests", len(tickets))
            _metrics.set_gauge("serve.queue.depth", len(self._pending))
        return tickets

    # -- the flusher -----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closing:
                    self._work.wait()
                if not self._pending and self._closing:
                    return
                # Tick: wait out the remainder of the oldest request's
                # grace period unless the batch is already full.
                if not self._closing:
                    deadline = self._oldest_enqueued + self.max_wait_s
                    while len(self._pending) < self.max_batch_size \
                            and not self._closing:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._work.wait(remaining)
                drained = self._pending[:self.max_batch_size]
                del self._pending[:self.max_batch_size]
                # Leftover requests keep the old tick timestamp: they
                # were enqueued before this flush, so their grace
                # period has already elapsed and the next iteration
                # drains them without another wait.
                self._space.notify_all()
            self._flush(drained)

    def _flush(self, tickets: list[CostTicket]) -> None:
        obs_on = _obs_enabled()
        t0 = time.perf_counter() if obs_on else 0.0
        groups: dict[Any, _Group] = {}
        groups_get = groups.get  # hot loop: bind lookups once
        for ticket in tickets:
            query = ticket.query
            sig = query.signature()
            group = groups_get(sig)
            if group is None:
                group = groups[sig] = _Group(query)
            point = query.point()
            index = group.index
            slot = index.get(point)
            if slot is None:
                slot = index[point] = len(group.points)
                group.points.append(point)
            ticket._slot = slot
            group.members.append(ticket)
        unique = sum(len(g.points) for g in groups.values())
        with _span("serve.flush", requests=len(tickets), unique=unique,
                   groups=len(groups)):
            for group in groups.values():
                try:
                    result = execute_group(
                        group.exemplar, group.points, cache=self.cache,
                        pool=self._pool, chunk_size=self.chunk_size)
                except BaseException as exc:  # propagate to every waiter
                    self._complete(group.members, None, exc)
                else:
                    self._complete(group.members, result, None)
        if obs_on:
            now = time.perf_counter()
            _metrics.inc("serve.flushes")
            _metrics.inc("serve.groups", len(groups))
            _metrics.inc("serve.dedup.duplicates", len(tickets) - unique)
            for group in groups.values():
                _metrics.inc("serve.chunks",
                             n_chunks(len(group.points), self.chunk_size)
                             if self._pool is not None else 1)
            _metrics.observe("serve.flush.occupancy",
                             len(tickets) / self.max_batch_size)
            _metrics.observe("serve.flush.seconds", now - t0)
            for ticket in tickets:
                _metrics.observe("serve.request.latency_seconds",
                                 now - ticket._t_submit)
            _metrics.set_gauge("serve.queue.depth", self.queue_depth)

    def _complete(self, tickets: list[CostTicket],
                  result: GroupResult | None,
                  exc: BaseException | None) -> None:
        callbacks: list[tuple[Callable[[CostTicket], None], CostTicket]] = []
        with self._done_cond:
            for ticket in tickets:
                if exc is not None:
                    ticket._exc = exc
                    ticket._state = _FAILED
                else:
                    ticket._group = result
                    ticket._state = _DONE
                if ticket._callbacks:
                    callbacks.extend(
                        (fn, ticket) for fn in ticket._callbacks)
                    ticket._callbacks = None
            self._done_cond.notify_all()
        for fn, ticket in callbacks:
            fn(ticket)
