"""Tick-based micro-batch scheduler: queue, coalesce, flush, fan out.

:class:`MicroBatchScheduler` is the heart of :mod:`repro.serve`.  Many
callers (threads or asyncio tasks) submit small independent cost
queries; a single background *flusher* thread drains them in
micro-batches and prices each batch with as few vectorized evaluations
as the traffic allows:

1. **Tick** — a flush fires when ``max_batch_size`` requests are
   pending *or* the oldest pending request has waited ``max_wait_s``,
   whichever comes first.  An idle scheduler sleeps on a condition
   variable; the first submit after idle starts the tick clock.
2. **Coalesce** — drained requests are grouped by model
   :meth:`~repro.serve.query.CostQuery.signature`; identical
   ``(N_tr, λ)`` points within a group are deduplicated, and every
   waiter receives its own result view (dedup is invisible to
   callers).
3. **Execute** — each group runs on an execution *backend*
   (:mod:`repro.serve.backend`): the thread backend chunks
   :func:`repro.serve.executor.execute_group` across an optional
   thread pool; the process backend packs the group into a
   shared-memory block and prices slices on a persistent process
   pool, sidestepping the GIL for CPU-bound flushes.  ``backend=``
   picks one explicitly, or ``"auto"`` routes each group by size
   (``process_threshold``).  Both reuse the shared
   :class:`~repro.batch.cache.BatchCache` and produce identical bits.
4. **Fan out** — tickets are completed under one condition broadcast
   per flush (no per-request locks on the hot path), and registered
   callbacks (the asyncio bridge) fire after completion.

Backpressure is explicit: the pending queue is bounded by
``max_queue_depth`` and :meth:`submit` either blocks for space (up to
a timeout) or raises :class:`~repro.errors.BackpressureError`
immediately when ``timeout=0`` (the error carries ``queue_depth``).

The tick is fixed by default; with ``adaptive=True`` the scheduler
tracks an EWMA of the arrival rate and of flush occupancy
(:class:`_AdaptiveTick`) and re-sizes the wait window inside
``wait_bounds`` after every flush — tiny waits under bursty load
(batches fill anyway), longer waits when traffic trickles (better
coalescing per flush).

Observability (:mod:`repro.obs`, off by default): a ``serve.flush``
span per flush; counters ``serve.requests`` / ``serve.flushes`` /
``serve.groups`` / ``serve.dedup.duplicates`` / ``serve.chunks`` /
``serve.backend.{thread,process}.groups`` (and ``serve.shm.*`` from
the process backend); gauges ``serve.queue.depth`` and
``serve.adaptive.wait_s``; histograms ``serve.flush.occupancy``,
``serve.flush.seconds`` and ``serve.request.latency_seconds``.  Every
hook is guarded so the disabled-observability overhead stays inside
the < 3% contract of ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable, NamedTuple, Sequence

from ..batch.cache import BatchCache
from ..batch.engine import USE_DEFAULT_CACHE, _resolve_cache
from ..errors import (
    BackpressureError,
    ParameterError,
    ServiceClosedError,
)
from ..obs import metrics as _metrics, span as _span
from ..obs.recording import QueryRecorder
from ..obs.state import enabled as _obs_enabled
from .backend import BACKEND_CHOICES, ProcessBackend, ThreadBackend
from .executor import GroupResult
from .query import CostQuery, ServedCost
from .tuning import TuningProfile, signature_key

__all__ = ["CostTicket", "FlushRecord", "GroupRecord",
           "MicroBatchScheduler", "SCHEDULER_BACKEND_CHOICES"]

#: The scheduler accepts the execution backends plus ``"tuned"`` —
#: ``"auto"`` routing driven by a learned per-signature
#: :class:`~repro.serve.tuning.TuningProfile` instead of one global
#: ``process_threshold``.
SCHEDULER_BACKEND_CHOICES = BACKEND_CHOICES + ("tuned",)

_PENDING = 0
_DONE = 1
_FAILED = 2


class CostTicket:
    """A claim on one submitted query's future result.

    Created by :meth:`MicroBatchScheduler.submit`; completed by the
    flusher.  :meth:`result` / :meth:`cost` block until the owning
    flush lands (all waiters share one scheduler-level condition, so a
    ticket costs an object and two attribute writes, not a lock and an
    event).  ``add_done_callback`` is the asyncio bridge: callbacks
    run on the flusher thread right after completion.
    """

    __slots__ = ("query", "_scheduler", "_state", "_group", "_slot",
                 "_exc", "_callbacks", "_t_submit")

    def __init__(self, query: CostQuery, scheduler: "MicroBatchScheduler",
                 t_submit: float) -> None:
        self.query = query
        self._scheduler = scheduler
        self._state = _PENDING
        self._group: GroupResult | None = None
        self._slot = -1
        self._exc: BaseException | None = None
        self._callbacks: list[Callable[["CostTicket"], None]] | None = None
        self._t_submit = t_submit

    def done(self) -> bool:
        """True once the owning flush has completed (or failed)."""
        return self._state != _PENDING

    def _wait(self, timeout: float | None) -> None:
        if self._state != _PENDING:
            return
        cond = self._scheduler._done_cond
        deadline = None if timeout is None else time.monotonic() + timeout
        with cond:
            while self._state == _PENDING:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        "query result not ready within timeout")
                cond.wait(remaining)

    def result(self, timeout: float | None = None) -> ServedCost:
        """The full served breakdown (blocks until the flush lands)."""
        self._wait(timeout)
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        assert self._group is not None
        return self._group.served(self._slot)

    def cost(self, timeout: float | None = None) -> float:
        """Just C_tr in dollars (blocks until the flush lands)."""
        self._wait(timeout)
        if self._state == _FAILED:
            assert self._exc is not None
            raise self._exc
        assert self._group is not None
        return self._group.cost(self._slot)

    def add_done_callback(self,
                          fn: Callable[["CostTicket"], None]) -> None:
        """Run ``fn(ticket)`` once completed (immediately if already)."""
        with self._scheduler._done_cond:
            if self._state == _PENDING:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        fn(self)


class _Group:
    """One signature's share of a flush: unique points + member tickets."""

    __slots__ = ("exemplar", "points", "index", "members")

    def __init__(self, exemplar: CostQuery) -> None:
        self.exemplar = exemplar
        self.points: list[tuple[float, float]] = []
        self.index: dict[tuple[float, float], int] = {}
        self.members: list[CostTicket] = []


class GroupRecord(NamedTuple):
    """One signature group's share of a flush (telemetry detail).

    ``sig_key`` is the :func:`~repro.serve.tuning.signature_key`
    digest that joins this observation against recorded logs and
    tuning profiles; ``points`` counts unique design points,
    ``requests`` the tickets fanned out to; ``backend`` names the
    executing backend and ``duration_s`` covers just its
    ``run_group`` — the raw material
    :func:`repro.replay.tuning.learn_profile` fits thresholds from.
    """

    sig_key: str
    points: int
    requests: int
    backend: str
    duration_s: float


class FlushRecord(NamedTuple):
    """One flush's shape, kept when ``flush_history`` is enabled.

    ``wait_s`` is the tick window that was in force when the flush
    fired (the adaptive tick re-sizes it *after* each flush), and
    ``duration_s`` covers coalescing + execution + fan-out.
    ``flush_id`` numbers flushes from 1 per scheduler;
    ``group_records`` carries the per-signature
    :class:`GroupRecord` detail (both trailing additions, so older
    positional consumers are unaffected).
    """

    requests: int
    unique: int
    groups: int
    wait_s: float
    duration_s: float
    flush_id: int = 0
    group_records: tuple[GroupRecord, ...] = ()


class _AdaptiveTick:
    """EWMA arrival-rate / occupancy tracker that sizes the tick.

    The wait window targets the time the queue needs to fill one
    batch at the observed rate — ``max_batch_size / rate`` — clamped
    to the configured bounds.  Bursty traffic therefore gets a tiny
    window (batches fill on their own; waiting only adds latency),
    while a trickle gets a long one (the only way those requests ever
    coalesce).  An occupancy EWMA short-circuits the rate estimate:
    when recent flushes run essentially full, the window pins to the
    lower bound regardless of the (noisy) instantaneous rate.

    Updates happen on the flusher thread only, once per flush — no
    locking, no per-request cost.
    """

    __slots__ = ("lo", "hi", "alpha", "batch", "rate", "occupancy",
                 "_t_prev")

    #: EWMA smoothing weight of the newest observation.
    ALPHA = 0.3
    #: Occupancy above which the window pins to the lower bound.
    FULL_OCCUPANCY = 0.9

    def __init__(self, lo: float, hi: float, batch: int) -> None:
        self.lo = lo
        self.hi = hi
        self.alpha = self.ALPHA
        self.batch = batch
        self.rate = 0.0
        self.occupancy = 0.0
        self._t_prev: float | None = None

    def update(self, n_requests: int, now: float) -> float | None:
        """Fold one flush in; return the next wait window (or None).

        ``None`` means "no opinion yet" — the first flush has no
        inter-flush interval to estimate a rate from.
        """
        occ = n_requests / self.batch
        self.occupancy = self.alpha * occ \
            + (1.0 - self.alpha) * self.occupancy
        if self._t_prev is None:
            self._t_prev = now
            return None
        dt = now - self._t_prev
        self._t_prev = now
        if dt <= 0.0:
            return None
        inst = n_requests / dt
        self.rate = inst if self.rate == 0.0 \
            else self.alpha * inst + (1.0 - self.alpha) * self.rate
        if self.occupancy >= self.FULL_OCCUPANCY:
            return self.lo
        if self.rate <= 0.0:
            return self.hi
        return min(self.hi, max(self.lo, self.batch / self.rate))


class MicroBatchScheduler:
    """Aggregates small cost queries into few vectorized evaluations.

    Parameters
    ----------
    max_batch_size:
        Flush as soon as this many requests are pending.
    max_wait_s:
        Flush when the oldest pending request has waited this long,
        even if the batch is not full — bounds added latency.
    max_queue_depth:
        Bound on pending requests; beyond it submits block or raise
        :class:`~repro.errors.BackpressureError`.
    chunk_size, workers:
        Flushes whose unique-point count exceeds ``chunk_size`` are
        split across ``workers`` execution lanes of the selected
        backend (``workers=1`` on the thread backend executes
        inline).
    backend:
        ``"thread"`` (the in-process chunked path), ``"process"``
        (every group through the shared-memory process pool), or
        ``"auto"`` (default): groups of at least ``process_threshold``
        unique points go to the process pool when ``workers > 1``,
        everything else stays on threads.  Bitwise identical either
        way — see :mod:`repro.serve.backend`.
    process_threshold:
        The ``"auto"`` crossover, in unique points per group.  Below
        it, shared-memory setup costs more than the GIL does.
    adaptive, wait_bounds:
        ``adaptive=True`` re-sizes the tick window after every flush
        within ``wait_bounds = (lo, hi)`` seconds (default
        ``(max_wait_s / 8, max_wait_s * 8)``) from EWMAs of arrival
        rate and flush occupancy; ``adaptive=False`` (default) keeps
        the fixed ``max_wait_s`` tick exactly as before.
    flush_history:
        Keep the last N :class:`FlushRecord` shapes in
        :attr:`recent_flushes` (0 disables; benches, the adaptive
        tests, and the tuning analyzer read them).  With history (or a
        recorder) on, each record carries per-signature
        :class:`GroupRecord` detail.
    record:
        Path of a recorded-traffic JSONL log
        (:mod:`repro.obs.recording`): every completed query is
        appended with its arrival offset, signature key, flush id,
        backend, and served cost.  ``None`` (default) disables
        recording.  The file is appended to and flushed once per
        scheduler flush (crash loses at most the final line).
    profile:
        A :class:`~repro.serve.tuning.TuningProfile` (or a path to one
        saved as JSON).  Required with ``backend="tuned"`` — per-group
        routing then uses the profile's learned per-signature
        ``process_threshold`` and chunk size instead of the global
        knobs — and rejected with any other backend.
    cache:
        The :class:`~repro.batch.cache.BatchCache` shared by every
        flush (and safely by other users — it is thread-safe).
        Defaults to the process-wide cache; pass ``None`` to disable.
        (Process-backend workers memoize in their own per-process
        caches; ``None`` disables those too.)
    """

    def __init__(self, *, max_batch_size: int = 256,
                 max_wait_s: float = 0.002,
                 max_queue_depth: int = 10_000,
                 chunk_size: int = 4096,
                 workers: int = 1,
                 backend: str = "auto",
                 process_threshold: int = 2048,
                 adaptive: bool = False,
                 wait_bounds: tuple[float, float] | None = None,
                 flush_history: int = 0,
                 record: str | os.PathLike | None = None,
                 profile: TuningProfile | str | os.PathLike | None = None,
                 cache: Any = USE_DEFAULT_CACHE) -> None:
        if max_batch_size < 1:
            raise ParameterError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise ParameterError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        if max_queue_depth < max_batch_size:
            raise ParameterError(
                f"max_queue_depth ({max_queue_depth}) must be >= "
                f"max_batch_size ({max_batch_size})")
        if chunk_size < 1:
            raise ParameterError(
                f"chunk_size must be >= 1, got {chunk_size}")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if process_threshold < 1:
            raise ParameterError(
                f"process_threshold must be >= 1, got {process_threshold}")
        if flush_history < 0:
            raise ParameterError(
                f"flush_history must be >= 0, got {flush_history}")
        if wait_bounds is not None and not adaptive:
            raise ParameterError("wait_bounds requires adaptive=True")
        if backend not in SCHEDULER_BACKEND_CHOICES:
            raise ParameterError(
                f"backend must be one of {SCHEDULER_BACKEND_CHOICES}, "
                f"got {backend!r}")
        if backend == "tuned":
            if profile is None:
                raise ParameterError(
                    "backend='tuned' requires a profile= "
                    "(a TuningProfile or a path to a saved one)")
            if not isinstance(profile, TuningProfile):
                profile = TuningProfile.load(profile)
        elif profile is not None:
            raise ParameterError(
                f"profile= requires backend='tuned', got {backend!r}")
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.max_queue_depth = max_queue_depth
        self.chunk_size = chunk_size
        self.workers = workers
        self.backend = backend
        self.process_threshold = process_threshold
        self.adaptive = adaptive
        self.profile: TuningProfile | None = profile
        self._recorder: QueryRecorder | None = \
            QueryRecorder(record) if record is not None else None
        self._flush_count = 0
        self.cache: BatchCache | None = _resolve_cache(cache)

        if adaptive:
            lo, hi = wait_bounds if wait_bounds is not None \
                else (max_wait_s / 8.0, max_wait_s * 8.0)
            if not 0.0 <= lo <= hi:
                raise ParameterError(
                    f"wait_bounds must satisfy 0 <= lo <= hi, "
                    f"got ({lo}, {hi})")
            self.wait_bounds: tuple[float, float] | None = (lo, hi)
            self._tick: _AdaptiveTick | None = _AdaptiveTick(
                lo, hi, max_batch_size)
            self._wait_s = min(hi, max(lo, max_wait_s))
            self._wait_hi = hi
        else:
            self.wait_bounds = None
            self._tick = None
            self._wait_s = max_wait_s
            self._wait_hi = max_wait_s
        self._history: deque[FlushRecord] | None = \
            deque(maxlen=flush_history) if flush_history else None
        # Appends happen on the flusher thread while any thread may
        # snapshot recent_flushes; iterating a deque during a mutation
        # raises, so both sides take this (tiny, once-per-flush) lock.
        self._history_lock = threading.Lock()

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._done_cond = threading.Condition(threading.Lock())
        self._pending: list[CostTicket] = []
        self._oldest_enqueued = 0.0
        self._closing = False
        self._started = False
        self._thread: threading.Thread | None = None
        self._thread_backend: ThreadBackend | None = None
        self._process_backend: ProcessBackend | None = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MicroBatchScheduler":
        """Start the flusher thread and backends (idempotent)."""
        with self._lock:
            if self._closing:
                raise ServiceClosedError("scheduler already closed")
            if self._started:
                return self
            self._started = True
        if self.backend != "process":
            self._thread_backend = ThreadBackend(self.workers,
                                                 self.chunk_size)
            self._thread_backend.start()
        if self.backend == "process" or (self.backend in ("auto", "tuned")
                                         and self.workers > 1):
            self._process_backend = ProcessBackend(self.workers,
                                                   self.chunk_size)
            if self.backend == "process":
                # Fork the workers now, from the caller's thread,
                # instead of inside the first flush.  "auto" stays
                # lazy — its pool spins up only if a group ever
                # crosses the size threshold.
                self._process_backend.start()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-flusher",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting, flush every pending request, join (idempotent)."""
        with self._lock:
            if self._closing:
                thread = None
            else:
                self._closing = True
                thread = self._thread
            self._work.notify_all()
            self._space.notify_all()
        if thread is not None:
            thread.join()
        if self._thread_backend is not None:
            self._thread_backend.close()
            self._thread_backend = None
        if self._process_backend is not None:
            self._process_backend.close()
            self._process_backend = None
        if self._recorder is not None:
            # After the join: every pending flush has been recorded.
            self._recorder.close()

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def queue_depth(self) -> int:
        """Number of requests currently pending (pre-flush)."""
        with self._lock:
            return len(self._pending)

    @property
    def current_wait_s(self) -> float:
        """The tick window currently in force.

        Equals ``max_wait_s`` on a fixed tick; moves inside
        ``wait_bounds`` when ``adaptive=True``.  (Written only by the
        flusher thread; reading races are benign.)
        """
        return self._wait_s

    @property
    def recent_flushes(self) -> list[FlushRecord]:
        """The last ``flush_history`` flush shapes, oldest first."""
        if self._history is None:
            return []
        with self._history_lock:
            return list(self._history)

    @property
    def recorder(self) -> QueryRecorder | None:
        """The attached traffic recorder (``None`` unless ``record=``)."""
        return self._recorder

    # -- submission ------------------------------------------------------

    def submit(self, query: CostQuery, *,
               timeout: float | None = None) -> CostTicket:
        """Enqueue one query; returns its :class:`CostTicket`.

        Blocks while the queue is full: forever with ``timeout=None``,
        up to ``timeout`` seconds otherwise (``timeout=0`` never
        blocks).  Raises :class:`~repro.errors.BackpressureError` when
        space does not free up in time, and
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`.
        """
        return self._submit_all((query,), timeout)[0]

    def submit_many(self, queries: Iterable[CostQuery], *,
                    timeout: float | None = None) -> list[CostTicket]:
        """Enqueue many queries with one lock acquisition per space wait.

        The bulk analog of :meth:`submit` — the fast path for
        sweep-shaped callers.  Queries are enqueued in order; if the
        queue fills mid-way the call blocks for space (the flusher is
        draining on the other side), so a partial enqueue only remains
        on timeout, in which case the raised
        :class:`~repro.errors.BackpressureError` carries the already
        issued tickets in its ``tickets`` attribute.

        Bulk submissions skip the ``max_wait_s`` tick: the grace
        period exists so independent single submits can coalesce, and
        a sweep arrives pre-coalesced, so the flusher drains it
        immediately rather than idling out the deadline.
        """
        return self._submit_all(tuple(queries), timeout)

    def _submit_all(self, queries: Sequence[CostQuery],
                    timeout: float | None) -> list[CostTicket]:
        if not self._started:
            self.start()
        obs_on = _obs_enabled()
        now = time.monotonic()
        t_submit = time.perf_counter() \
            if (obs_on or self._recorder is not None) else 0.0
        tickets: list[CostTicket] = []
        deadline = None if timeout is None else now + timeout
        i = 0
        with self._lock:
            while i < len(queries):
                if self._closing:
                    raise ServiceClosedError(
                        "scheduler is closed to new queries")
                free = self.max_queue_depth - len(self._pending)
                if free <= 0:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        exc = BackpressureError(
                            f"queue full ({self.max_queue_depth} pending); "
                            f"enqueued {i} of {len(queries)} queries")
                        exc.tickets = tickets
                        exc.queue_depth = len(self._pending)
                        raise exc
                    self._space.wait(remaining)
                    continue
                was_empty = not self._pending
                for query in queries[i:i + free]:
                    ticket = CostTicket(query, self, t_submit)
                    self._pending.append(ticket)
                    tickets.append(ticket)
                    i += 1
                if len(queries) > 1:
                    # A bulk submission is already coalesced — the tick
                    # grace period exists to let *independent* single
                    # submits pile up, so a sweep's deadline is born
                    # expired and the flusher drains it immediately.
                    # Backdate by the *upper* wait bound: the adaptive
                    # tick never grows the window past it, so the
                    # deadline stays expired whatever the tick does.
                    self._oldest_enqueued = now - self._wait_hi
                    self._work.notify()
                elif was_empty:
                    self._oldest_enqueued = time.monotonic()
                    self._work.notify()
                elif len(self._pending) >= self.max_batch_size:
                    self._work.notify()
        if obs_on:
            _metrics.inc("serve.requests", len(tickets))
            _metrics.set_gauge("serve.queue.depth", len(self._pending))
        return tickets

    # -- the flusher -----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._lock:
                while not self._pending and not self._closing:
                    self._work.wait()
                if not self._pending and self._closing:
                    return
                # Tick: wait out the remainder of the oldest request's
                # grace period unless the batch is already full.
                if not self._closing:
                    deadline = self._oldest_enqueued + self._wait_s
                    while len(self._pending) < self.max_batch_size \
                            and not self._closing:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._work.wait(remaining)
                drained = self._pending[:self.max_batch_size]
                del self._pending[:self.max_batch_size]
                # Leftover requests keep the old tick timestamp: they
                # were enqueued before this flush, so their grace
                # period has already elapsed and the next iteration
                # drains them without another wait.
                self._space.notify_all()
            t_drain = time.monotonic() if self._tick is not None else 0.0
            self._flush(drained)
            if self._tick is not None:
                # Rate is estimated from drain-to-drain intervals; the
                # re-sized window applies from the *next* tick, so the
                # flush above recorded the wait that produced it.
                want = self._tick.update(len(drained), t_drain)
                if want is not None:
                    self._wait_s = want
                    if _obs_enabled():
                        _metrics.set_gauge("serve.adaptive.wait_s", want)

    def _backend_for(self, n_points: int, sig_key: str | None = None):
        # Explicit "process" routes everything to shared memory; on
        # "auto", only groups big enough to amortize block setup (and
        # only when workers > 1, else the pool cannot help).  "tuned"
        # is "auto" with the threshold looked up per signature in the
        # learned profile.
        process = self._process_backend
        if process is None:
            return self._thread_backend
        if self.backend == "process":
            return process
        threshold = self.process_threshold
        if self.backend == "tuned":
            assert self.profile is not None
            threshold = self.profile.process_threshold_for(sig_key)
        if n_points >= threshold:
            return process
        return self._thread_backend

    def _flush(self, tickets: list[CostTicket]) -> None:
        obs_on = _obs_enabled()
        history = self._history is not None
        recorder = self._recorder
        tuned = self.backend == "tuned"
        # "detail" gates the per-group extras — signature digests and
        # run_group timing — that telemetry and recording consume but
        # plain serving should not pay for.
        detail = history or recorder is not None
        t0 = time.perf_counter() if (obs_on or detail) else 0.0
        self._flush_count += 1
        flush_id = self._flush_count
        groups: dict[Any, _Group] = {}
        groups_get = groups.get  # hot loop: bind lookups once
        for ticket in tickets:
            query = ticket.query
            sig = query.signature()
            group = groups_get(sig)
            if group is None:
                group = groups[sig] = _Group(query)
            point = query.point()
            index = group.index
            slot = index.get(point)
            if slot is None:
                slot = index[point] = len(group.points)
                group.points.append(point)
            ticket._slot = slot
            group.members.append(ticket)
        unique = sum(len(g.points) for g in groups.values())
        chunk_total = 0
        backend_groups: dict[str, int] = {}
        group_records: list[GroupRecord] = []
        record_entries: list[tuple] = []
        with _span("serve.flush", requests=len(tickets), unique=unique,
                   groups=len(groups)) as sp:
            for sig, group in groups.items():
                sig_key = signature_key(sig) if (tuned or detail) else None
                backend = self._backend_for(len(group.points), sig_key)
                chunk = self.profile.chunk_size_for(sig_key) \
                    if tuned else None
                if obs_on:
                    chunk_total += backend.n_chunks_for(len(group.points))
                backend_groups[backend.name] = \
                    backend_groups.get(backend.name, 0) + 1
                t_g = time.perf_counter() if detail else 0.0
                error: str | None = None
                try:
                    # Only tuned profiles override chunking; omitting
                    # the kwarg otherwise keeps run_group's plain
                    # three-argument call shape.
                    if chunk is None:
                        result = backend.run_group(
                            group.exemplar, group.points, self.cache)
                    else:
                        result = backend.run_group(
                            group.exemplar, group.points, self.cache,
                            chunk_size=chunk)
                except BaseException as exc:  # propagate to every waiter
                    error = type(exc).__name__
                    result = None
                    self._complete(group.members, None, exc)
                else:
                    self._complete(group.members, result, None)
                if detail:
                    group_records.append(GroupRecord(
                        sig_key=sig_key or "", points=len(group.points),
                        requests=len(group.members), backend=backend.name,
                        duration_s=time.perf_counter() - t_g))
                if recorder is not None:
                    for ticket in group.members:
                        cost = result.cost(ticket._slot) \
                            if result is not None else None
                        record_entries.append(
                            (ticket._t_submit, ticket.query, sig_key or "",
                             backend.name, cost, error))
            sp.annotate(flush_id=flush_id, backends=dict(backend_groups))
        if recorder is not None:
            recorder.record_flush(flush_id, record_entries)
        if history:
            assert self._history is not None
            record = FlushRecord(
                requests=len(tickets), unique=unique, groups=len(groups),
                wait_s=self._wait_s,
                duration_s=time.perf_counter() - t0,
                flush_id=flush_id,
                group_records=tuple(group_records))
            with self._history_lock:
                self._history.append(record)
        if obs_on:
            now = time.perf_counter()
            _metrics.inc("serve.flushes")
            _metrics.inc("serve.groups", len(groups))
            _metrics.inc("serve.dedup.duplicates", len(tickets) - unique)
            _metrics.inc("serve.chunks", chunk_total)
            for name, count in backend_groups.items():
                _metrics.inc(f"serve.backend.{name}.groups", count)
            _metrics.observe("serve.flush.occupancy",
                             len(tickets) / self.max_batch_size)
            _metrics.observe("serve.flush.seconds", now - t0)
            for ticket in tickets:
                _metrics.observe("serve.request.latency_seconds",
                                 now - ticket._t_submit)
            _metrics.set_gauge("serve.queue.depth", self.queue_depth)

    def _complete(self, tickets: list[CostTicket],
                  result: GroupResult | None,
                  exc: BaseException | None) -> None:
        callbacks: list[tuple[Callable[[CostTicket], None], CostTicket]] = []
        with self._done_cond:
            for ticket in tickets:
                if exc is not None:
                    ticket._exc = exc
                    ticket._state = _FAILED
                else:
                    ticket._group = result
                    ticket._state = _DONE
                if ticket._callbacks:
                    callbacks.extend(
                        (fn, ticket) for fn in ticket._callbacks)
                    ticket._callbacks = None
            self._done_cond.notify_all()
        for fn, ticket in callbacks:
            fn(ticket)
