"""Flush execution backends: in-thread chunking vs shared-memory pool.

The scheduler (:mod:`repro.serve.scheduler`) coalesces traffic into
signature groups; a *backend* prices one group.  Two implementations
share that interface:

* :class:`ThreadBackend` — the original path: chunked
  :func:`~repro.serve.executor.execute_group` over an optional
  ``ThreadPoolExecutor``.  The NumPy stages scale across threads (they
  release the GIL), but the executor's scalar-parity Python loops —
  eq.-(7) yield, per-λ wafer cost, custom yield laws — serialize on
  it, so CPU-bound flushes plateau.
* :class:`ProcessBackend` — one
  :class:`~repro.shm.ShmBlock` per group: the parent writes the
  ``(N_tr, λ)`` input rows into shared memory, pool workers map the
  block by *name*, run the same executor arithmetic on their slice via
  :func:`~repro.serve.executor.execute_group_rows`, and write the six
  result rows in place.  Nothing per-point crosses the pickle
  boundary in either direction — a task is a block name, two slice
  bounds, and the exemplar query.

Both backends produce bitwise-identical results: chunking is
elementwise-invisible (the PR-4 contract) and the shared float64
matrix holds die counts and feasibility exactly (see
:mod:`repro.shm`).  The hypothesis suite in
``tests/property_based/test_serve_parity.py`` quantifies over the
backend choice.

Worker lifecycle reuses :func:`repro.yieldsim.parallel._run_pool` with
a persistent pool, so infrastructure failures (fork unavailable,
worker crash, unpicklable model) degrade to an in-process run of the
same chunks with one :class:`~repro.yieldsim.parallel.
ParallelExecutionWarning` — and the block is unlinked either way.
Worker spans/metrics ship back through the same
``capture_flags``/``absorb`` protocol as the sharded Monte Carlo, so
``serve.chunk`` spans re-parent into the parent's ``serve.flush``.
"""

from __future__ import annotations

import math
import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from ..batch.cache import BatchCache, default_cache
from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.capture import absorb, begin_capture, capture_flags, end_capture
from ..obs.state import enabled as _obs_enabled
from ..yieldsim.parallel import _run_pool
from .executor import (
    GroupResult,
    GroupRows,
    N_RESULT_ROWS,
    execute_group,
    execute_group_rows,
    group_result_from_rows,
    n_chunks,
)
from ..shm import ShmBlock
from .query import CostQuery

__all__ = ["BACKEND_CHOICES", "ProcessBackend", "ThreadBackend",
           "validate_backend"]

#: Accepted values of the scheduler/service ``backend=`` knob.
BACKEND_CHOICES = ("auto", "thread", "process")

#: Shared flush matrix: two input rows (N_tr, λ) + the six result rows.
_N_ROWS = 2 + N_RESULT_ROWS

#: Fault-injection hook for the shared-memory leak tests
#: (``tests/serve/test_backend.py``): ``"raise"`` raises in every
#: process; ``"exit:<pid>"`` hard-kills any process *except* ``<pid>``
#: (the test process), so the parent's sequential fallback still
#: completes after the pool breaks.
FAULT_ENV = "REPRO_SERVE_WORKER_FAULT"


def validate_backend(backend: str,
                     choices: tuple[str, ...] = BACKEND_CHOICES) -> str:
    """Check a ``backend=`` knob value, returning it unchanged.

    ``choices`` lets the scheduler accept its superset (the execution
    backends plus ``"tuned"``) through the same error message shape.
    """
    if backend not in choices:
        raise ParameterError(
            f"backend must be one of {choices}, got {backend!r}")
    return backend


def _apply_fault() -> None:
    fault = os.environ.get(FAULT_ENV)
    if not fault:
        return
    if fault == "raise":
        raise RuntimeError("injected serve worker fault")
    if fault.startswith("exit:") and os.getpid() != int(fault[5:]):
        os._exit(17)


def _warm_noop() -> None:
    return None


def _chunk_worker(name: str, cols: int, exemplar: CostQuery,
                  lo: int, hi: int,
                  flags: tuple[bool, bool] | None,
                  use_cache: bool) -> dict | None:
    """One worker's share of a shared-memory flush.

    Maps the named block, prices rows ``lo:hi`` in place, and returns
    only the observability payload (or ``None``).  Runs identically in
    a pool worker and in the parent during the sequential fallback.
    Workers memoize in their own process-wide cache when the parent
    serves from one (``use_cache``) — cache state cannot change
    results, only skip recomputation (the exact-key contract of
    :class:`~repro.batch.cache.BatchCache`).
    """
    frame = begin_capture(flags) if flags else None
    try:
        _apply_fault()
        cache: BatchCache | None = default_cache() if use_cache else None
        block = ShmBlock.attach(name, _N_ROWS, cols)
        try:
            with _span("serve.chunk", lo=lo, hi=hi):
                matrix = block.array
                execute_group_rows(
                    exemplar, matrix[0, lo:hi], matrix[1, lo:hi],
                    GroupRows.from_matrix(matrix[2:, lo:hi]),
                    cache=cache)
            del matrix
        finally:
            block.close()
    finally:
        payload = end_capture(frame) if frame else None
    return payload


class ThreadBackend:
    """Chunked in-process execution, optionally over a thread pool."""

    name = "thread"

    def __init__(self, workers: int = 1, chunk_size: int = 4096) -> None:
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: ThreadPoolExecutor | None = None

    def start(self) -> None:
        """Create the thread pool when more than one worker is asked."""
        if self.workers > 1 and self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-serve-worker")

    def run_group(self, exemplar: CostQuery,
                  points: list[tuple[float, float]],
                  cache: BatchCache | None,
                  chunk_size: int | None = None) -> GroupResult:
        """Price one coalesced group (see :func:`execute_group`).

        ``chunk_size`` overrides the backend default for this group —
        the tuned scheduler's per-signature knob.  Chunking is bitwise
        invisible (the elementwise contract), so the override can only
        change speed, never results.
        """
        return execute_group(exemplar, points, cache=cache,
                             pool=self._pool,
                             chunk_size=chunk_size or self.chunk_size)

    def n_chunks_for(self, n_points: int) -> int:
        """How many chunks :meth:`run_group` splits a group into."""
        if self._pool is None:
            return 1
        return n_chunks(n_points, self.chunk_size)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend:
    """Shared-memory execution on a persistent process pool.

    Every flushed group gets one :class:`~repro.shm.ShmBlock`
    tracked in a live set until its ``finally`` unlinks it, so blocks
    never outlive their flush — not on success, not on a worker error,
    and any straggler (an interrupted flush) is swept by
    :meth:`close`.  A broken pool (crashed worker) is replaced on the
    next flush; the flush that observed the break completes in-process
    via the ``_run_pool`` fallback.
    """

    name = "process"

    def __init__(self, workers: int = 2, chunk_size: int = 4096) -> None:
        self.workers = workers
        self.chunk_size = chunk_size
        self._pool: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self._live: dict[str, ShmBlock] = {}

    def start(self) -> None:
        """Spin up the pool and fork its workers now.

        Forking from the caller's (main) thread at start keeps worker
        creation away from the flusher thread and out of the first
        flush's latency.  Errors are deferred: a pool that cannot
        start here is retried per-flush, where ``_run_pool`` degrades
        to the sequential fallback.
        """
        try:
            pool = self._ensure_pool()
            for f in [pool.submit(_warm_noop) for _ in range(self.workers)]:
                f.result()
        except Exception:
            pass

    def _ensure_pool(self) -> ProcessPoolExecutor:
        pool = self._pool
        if pool is not None and getattr(pool, "_broken", False):
            pool.shutdown(wait=False)
            pool = self._pool = None
        if pool is None:
            pool = self._pool = ProcessPoolExecutor(
                max_workers=self.workers)
        return pool

    def _chunk_for(self, n_points: int,
                   chunk_size: int | None = None) -> int:
        # Spread the group over every worker, but never exceed the
        # configured chunk_size (small chunks bound worker latency and
        # are bitwise invisible by the elementwise contract).
        spread = math.ceil(n_points / self.workers)
        return max(1, min(chunk_size or self.chunk_size, spread))

    def n_chunks_for(self, n_points: int) -> int:
        """How many slices :meth:`run_group` cuts a group into."""
        return n_chunks(n_points, self._chunk_for(n_points))

    def run_group(self, exemplar: CostQuery,
                  points: list[tuple[float, float]],
                  cache: BatchCache | None,
                  chunk_size: int | None = None) -> GroupResult:
        """Price one group through shared memory, unlinking always.

        ``chunk_size`` overrides the backend default for this group
        (the tuned scheduler's per-signature knob); results are
        bitwise identical under any chunking.
        """
        k = len(points)
        n = np.array([p[0] for p in points], dtype=np.float64)
        lam = np.array([p[1] for p in points], dtype=np.float64)
        flags = capture_flags()
        pool = self._ensure_pool()
        block = ShmBlock.create(_N_ROWS, k)
        with self._lock:
            self._live[block.name] = block
        if _obs_enabled():
            _metrics.inc("serve.shm.blocks")
            _metrics.inc("serve.shm.bytes", block.shm.size)
        try:
            matrix = block.array
            matrix[0, :] = n
            matrix[1, :] = lam
            chunk = self._chunk_for(k, chunk_size)
            argsets = [
                (block.name, k, exemplar, lo, min(lo + chunk, k), flags,
                 cache is not None)
                for lo in range(0, k, chunk)]
            for payload in _run_pool(_chunk_worker, argsets, pool=pool):
                absorb(payload)
            result = group_result_from_rows(n, lam, matrix[2:, :])
            del matrix
            return result
        finally:
            with self._lock:
                self._live.pop(block.name, None)
            block.release()

    def close(self) -> None:
        """Shut the pool down and sweep any straggler blocks."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._lock:
            stragglers = list(self._live.values())
            self._live.clear()
        for block in stragglers:
            block.release()
