"""Query and result types for the :mod:`repro.serve` cost service.

A *query* is one scalar design point plus everything needed to price
it.  Three families cover the library's eq.-(1) entry points:

* :class:`FabCostQuery` — the Fig.-8 composed form
  (eqs. 1+3+4+7) against a
  :class:`~repro.core.optimization.FabCharacterization`; its scalar
  reference is :func:`~repro.core.optimization.transistor_cost_full`.
* :class:`ModelCostQuery` — the general
  :meth:`~repro.core.transistor_cost.TransistorCostModel.evaluate`
  form with an explicit yield specification; its scalar reference is
  that method (except that an unfittable die comes back as an
  infeasible result instead of a raise, exactly like
  :func:`repro.batch.evaluate_batch`).
* :class:`ChipletCostQuery` — a k-chiplet assembly against a
  :class:`~repro.system.chiplet.ChipletCostModel`; its scalar
  reference is that model's ``cost_per_transistor``.  The chiplet
  count and model live in the *signature* while ``point()`` stays
  ``(N_tr, λ)``, so chiplet traffic rides the scheduler's coalescing,
  dedup, and shared-memory machinery unchanged.

Queries validate at construction, so a bad parameter fails at the
submitting call site rather than poisoning a whole micro-batch.

Coalescing key
--------------
``signature()`` returns a hashable key over every *model* parameter —
two queries with equal signatures may be evaluated in the same
vectorized batch; ``point()`` is the remaining per-query coordinate
``(N_tr, λ)`` used to deduplicate identical design points within a
flush.  Custom (unhashable or non-frozen) yield models fall back to
an identity-based signature: structurally equal but distinct custom
instances then coalesce conservatively (never incorrectly).

:class:`ServedCost` is the scalar result — the served analog of
:class:`~repro.core.transistor_cost.CostBreakdown`, with an explicit
``feasible`` flag instead of the scalar path's raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core.optimization import FIG8_FAB, FabCharacterization
from ..core.transistor_cost import TransistorCostModel
from ..errors import ParameterError
from ..system.chiplet import ChipletCostModel
from ..units import require_fraction, require_positive
from ..yieldsim.models import ReferenceAreaYield, YieldModel

__all__ = [
    "ChipletCostQuery",
    "CostQuery",
    "FabCostQuery",
    "ModelCostQuery",
    "ServedCost",
    "scalar_reference_cost",
]


@dataclass(frozen=True)
class ServedCost:
    """One served eq.-(1) evaluation — scalar fields, array-backed.

    The scalar analog of one cell of
    :class:`~repro.batch.engine.BatchCostResult`: where the query's
    die does not fit its wafer (or the eq.-(7) yield underflows, for
    fab queries) ``feasible`` is False and
    ``cost_per_transistor_dollars`` is ``inf`` while the intermediates
    keep their computed values for auditing.
    """

    n_transistors: float
    feature_size_um: float
    wafer_cost_dollars: float
    die_area_cm2: float
    dies_per_wafer: int
    yield_value: float
    cost_per_transistor_dollars: float
    feasible: bool

    @property
    def cost_per_transistor_microdollars(self) -> float:
        """C_tr in the paper's Table-3 unit, $·10⁻⁶ (inf when masked)."""
        return self.cost_per_transistor_dollars * 1.0e6

    @property
    def good_dies_per_wafer(self) -> float:
        """Expected functioning dies per wafer: N_ch · Y."""
        return self.dies_per_wafer * self.yield_value

    @property
    def cost_per_good_die_dollars(self) -> float:
        """Wafer cost spread over functioning dies (inf when none fit)."""
        if self.dies_per_wafer < 1:
            return float("inf")
        return self.wafer_cost_dollars / self.good_dies_per_wafer


class CostQuery:
    """Common protocol of the service's query families.

    Subclasses are frozen dataclasses carrying one ``(N_tr, λ)`` design
    point plus a model specification; they provide the coalescing key
    (:meth:`signature`), the dedup coordinate (:meth:`point`), and an
    executor kind tag consumed by :mod:`repro.serve.executor`.
    """

    #: Executor dispatch tag; set by each subclass.
    kind = "abstract"

    def signature(self) -> Hashable:
        """Hashable key over every model parameter (not the point)."""
        raise NotImplementedError

    def point(self) -> tuple[float, float]:
        """The ``(n_transistors, feature_size_um)`` dedup coordinate."""
        raise NotImplementedError


@dataclass(frozen=True)
class FabCostQuery(CostQuery):
    """Price one ``(N_tr, λ)`` point against a fitted fab (Fig.-8 form).

    Scalar reference:
    ``transistor_cost_full(n_transistors, feature_size_um, fab)`` —
    the service's answer is bitwise equal to it, including the ``inf``
    convention for infeasible points.
    """

    n_transistors: float
    feature_size_um: float
    fab: FabCharacterization = field(default_factory=lambda: FIG8_FAB)

    kind = "fab"

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("feature_size_um", self.feature_size_um)
        if not isinstance(self.fab, FabCharacterization):
            raise ParameterError(
                f"fab must be a FabCharacterization, got {self.fab!r}")

    def signature(self) -> Hashable:
        """All six fitted fab parameters (floats, so exactly hashable).

        Computed once per query and memoized in ``__dict__`` (a frozen
        dataclass still owns a plain instance dict): the flusher reads
        the signature on every coalescing pass, and rebuilding the
        tuple per request is pure overhead on the hot path.
        """
        sig = self.__dict__.get("_sig")
        if sig is None:
            fab = self.fab
            sig = self.__dict__["_sig"] = (
                "fab", fab.cost_growth_rate, fab.reference_cost_dollars,
                fab.wafer_radius_cm, fab.design_density,
                fab.defect_coefficient, fab.size_exponent_p)
        return sig

    def point(self) -> tuple[float, float]:
        """The ``(N_tr, λ)`` coordinate."""
        return (self.n_transistors, self.feature_size_um)


@dataclass(frozen=True)
class ChipletCostQuery(CostQuery):
    """Price one ``(N_tr, λ)`` point as a ``chiplets``-die assembly.

    Scalar reference:
    ``model.cost_per_transistor(chiplets, n_transistors,
    feature_size_um)`` — the service's answer is bitwise equal to it
    (the chiplet batch kernel replays the scalar operation order
    exactly, transcendentals included), with the same ``inf``
    convention for infeasible points.

    ``point()`` stays the ``(N_tr, λ)`` dedup coordinate; the chiplet
    count and every model parameter live in :meth:`signature`, so two
    queries coalesce into one vectorized group only when they price
    the same assembly design.
    """

    n_transistors: float
    feature_size_um: float
    chiplets: int = 4
    model: ChipletCostModel = field(default_factory=ChipletCostModel)

    kind = "chiplet"

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("feature_size_um", self.feature_size_um)
        if isinstance(self.chiplets, bool) \
                or not isinstance(self.chiplets, int):
            raise ParameterError(
                f"chiplets must be an int, got {self.chiplets!r}")
        if self.chiplets < 1:
            raise ParameterError(
                f"chiplets must be >= 1, got {self.chiplets}")
        if not isinstance(self.model, ChipletCostModel):
            raise ParameterError(
                f"model must be a ChipletCostModel, got {self.model!r}")

    def signature(self) -> Hashable:
        """Chiplet count + fab + packaging + test + probe coverage.

        Memoized per query instance (see
        :meth:`FabCostQuery.signature` for why).
        """
        sig = self.__dict__.get("_sig")
        if sig is None:
            m = self.model
            fab, pk, t = m.fab, m.packaging, m.test
            sig = self.__dict__["_sig"] = (
                "chiplet", self.chiplets,
                fab.cost_growth_rate, fab.reference_cost_dollars,
                fab.wafer_radius_cm, fab.design_density,
                fab.defect_coefficient, fab.size_exponent_p,
                pk.name, pk.base_cost_dollars, pk.cost_per_die_dollars,
                pk.cost_per_cm2_dollars, pk.bond_yield,
                t.tester_rate_dollars_per_hour, t.probe_base_seconds,
                t.probe_seconds_per_kilotransistor, t.final_base_seconds,
                t.final_seconds_per_kilotransistor,
                m.probe_coverage)
        return sig

    def point(self) -> tuple[float, float]:
        """The ``(N_tr, λ)`` coordinate."""
        return (self.n_transistors, self.feature_size_um)


def scalar_reference_cost(query: CostQuery) -> float:
    """The scalar-path C_tr the service must match bitwise for ``query``.

    The canonical statement of the serving parity contract, shared by
    the benches and the load generator's ``verify`` mode: a
    :class:`FabCostQuery` references
    :func:`~repro.core.optimization.transistor_cost_full`, a
    :class:`ModelCostQuery` references
    :meth:`~repro.core.transistor_cost.TransistorCostModel.evaluate`
    with an unfittable die masked to ``inf`` (the batch-engine
    convention the service follows instead of raising), a
    :class:`ChipletCostQuery` references
    :meth:`~repro.system.chiplet.ChipletCostModel.cost_per_transistor`.
    """
    from ..core.optimization import transistor_cost_full

    if isinstance(query, FabCostQuery):
        return transistor_cost_full(query.n_transistors,
                                    query.feature_size_um, query.fab)
    if isinstance(query, ChipletCostQuery):
        return query.model.cost_per_transistor(
            query.chiplets, query.n_transistors, query.feature_size_um)
    if not isinstance(query, ModelCostQuery):
        raise ParameterError(
            f"no scalar reference for query {query!r}")
    try:
        breakdown = query.model.evaluate(
            n_transistors=query.n_transistors,
            feature_size_um=query.feature_size_um,
            design_density=query.design_density,
            yield_model=query.yield_model,
            defect_density_per_cm2=query.defect_density_per_cm2,
            yield_value=query.yield_value,
            aspect_ratio=query.aspect_ratio)
    except ParameterError:
        return float("inf")  # the service masks unfittable dies to inf
    return breakdown.cost_per_transistor_dollars


def _yield_signature(yield_model: YieldModel | None,
                     defect_density_per_cm2: float | None,
                     yield_value: float | None) -> Hashable:
    if yield_value is not None:
        return ("value", yield_value)
    if isinstance(yield_model, ReferenceAreaYield):
        return ("refarea", yield_model.reference_yield,
                yield_model.reference_area_cm2)
    try:
        hash(yield_model)
        key: Hashable = yield_model
    except TypeError:  # custom unhashable model: identity-coalesce only
        key = id(yield_model)
    return ("model", type(yield_model).__qualname__, key,
            defect_density_per_cm2)


@dataclass(frozen=True)
class ModelCostQuery(CostQuery):
    """Price one point with the general evaluate() form of eq. (1).

    Mirrors the keyword surface of
    :meth:`~repro.core.transistor_cost.TransistorCostModel.evaluate`:
    yield comes from exactly one of ``yield_value``, a
    :class:`~repro.yieldsim.models.ReferenceAreaYield`, or any other
    yield model plus ``defect_density_per_cm2``.  Where the scalar
    method raises because the die does not fit the wafer, the served
    result is ``feasible=False`` with ``inf`` cost instead (the
    :func:`repro.batch.evaluate_batch` masking convention).
    """

    n_transistors: float
    feature_size_um: float
    model: TransistorCostModel
    design_density: float
    yield_model: YieldModel | None = None
    defect_density_per_cm2: float | None = None
    yield_value: float | None = None
    aspect_ratio: float = 1.0

    kind = "model"

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("feature_size_um", self.feature_size_um)
        require_positive("design_density", self.design_density)
        require_positive("aspect_ratio", self.aspect_ratio)
        if not isinstance(self.model, TransistorCostModel):
            raise ParameterError(
                f"model must be a TransistorCostModel, got {self.model!r}")
        given = [self.yield_model is not None, self.yield_value is not None]
        if sum(given) != 1:
            raise ParameterError(
                "specify exactly one of yield_model or yield_value")
        if self.yield_value is not None:
            require_fraction("yield_value", self.yield_value,
                             inclusive_low=False)
        elif not isinstance(self.yield_model, ReferenceAreaYield) \
                and self.defect_density_per_cm2 is None:
            raise ParameterError(
                "defect_density_per_cm2 is required with this yield model")

    def signature(self) -> Hashable:
        """Wafer + wafer-cost + density/aspect + yield specification.

        Memoized per query instance (see
        :meth:`FabCostQuery.signature` for why).
        """
        sig = self.__dict__.get("_sig")
        if sig is None:
            m = self.model
            wc = m.wafer_cost
            sig = self.__dict__["_sig"] = (
                "model",
                m.wafer.radius_cm, m.wafer.edge_exclusion_cm,
                wc.reference_cost_dollars, wc.cost_growth_rate,
                wc.reference_feature_um, wc.overhead_dollars,
                wc.generation_model, wc.shrink, wc.linear_step_um,
                m.volume_wafers, self.design_density, self.aspect_ratio,
                _yield_signature(self.yield_model,
                                 self.defect_density_per_cm2,
                                 self.yield_value))
        return sig

    def point(self) -> tuple[float, float]:
        """The ``(N_tr, λ)`` coordinate."""
        return (self.n_transistors, self.feature_size_um)
