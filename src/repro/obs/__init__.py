"""repro.obs — spans, metrics, and profiling hooks for the hot paths.

A zero-dependency observability layer for the batch engine, the
``BatchCache``, the parallel Monte Carlo shards, and the CLI:

* :mod:`~repro.obs.trace` — a span tracer (``with obs.span(name,
  **attrs):`` or as a decorator): nested, thread-safe via
  contextvars, monotonic-clocked, exportable as JSON lines
  (:func:`write_trace_jsonl`) or a pretty tree
  (:func:`format_trace_tree`), and mergeable across processes.
* :mod:`~repro.obs.registry` — a process-wide
  :class:`MetricsRegistry` (``repro.obs.metrics``) of counters,
  gauges, and summary histograms, snapshot-able to a dict.
* :mod:`~repro.obs.capture` — the shard-side capture bracket that
  ships worker-process spans/metrics back to the parent
  (:func:`capture_flags` / :func:`begin_capture` /
  :func:`end_capture` / :func:`absorb`).
* :mod:`~repro.obs.recording` — the recorded-traffic JSONL format:
  :class:`QueryRecorder` (attached via
  ``MicroBatchScheduler(record=PATH)``) plus the loaders shared by
  the replay harness (:mod:`repro.replay`) and cache prewarm.

Everything is **off by default** and near-zero-cost while off: every
hook is guarded by the flags in :mod:`~repro.obs.state` (one attribute
read), a contract asserted by ``benchmarks/bench_obs_overhead.py``.
Enable with ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` in the
environment, programmatically via :func:`enable`, or per CLI run with
``python -m repro <command> --trace trace.jsonl --metrics``.  Metric
names and the overhead contract are documented in
``docs/observability.md``.
"""

from .state import (
    ObsState,
    disable,
    enable,
    enabled,
    metrics_enabled,
    tracing_enabled,
)
from .trace import (
    SpanRecord,
    Tracer,
    adopt_spans,
    clear_trace,
    current_span_id,
    format_trace_tree,
    get_trace,
    span,
    write_trace_jsonl,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from .capture import absorb, begin_capture, capture_flags, end_capture
from .recording import (
    QueryRecorder,
    RecordedLog,
    RecordedQuery,
    is_recorded_log,
    load_recorded_log,
    load_recorded_queries,
)

__all__ = [
    "ObsState",
    "enable",
    "disable",
    "enabled",
    "tracing_enabled",
    "metrics_enabled",
    "span",
    "SpanRecord",
    "Tracer",
    "get_trace",
    "clear_trace",
    "current_span_id",
    "adopt_spans",
    "format_trace_tree",
    "write_trace_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "capture_flags",
    "begin_capture",
    "end_capture",
    "absorb",
    "QueryRecorder",
    "RecordedLog",
    "RecordedQuery",
    "is_recorded_log",
    "load_recorded_log",
    "load_recorded_queries",
]
