"""Traffic recording: persist served cost queries as a replayable log.

The serve layer prices queries and throws them away; capacity planning
wants them back.  This module defines the **recorded-log format** — an
append-only JSONL file where each line is one served query with its
arrival offset, coalescing signature key, flush id, executing backend,
and the served cost — plus the writer (:class:`QueryRecorder`, driven
by ``MicroBatchScheduler(record=PATH)``) and the readers the rest of
the toolchain shares: :func:`load_recorded_log` (the replay harness,
:mod:`repro.replay`), :func:`load_recorded_queries` (cache prewarm via
:meth:`repro.batch.cache.BatchCache.prewarm`), and
:func:`is_recorded_log` (format auto-detection against the legacy
points-file format of :func:`repro.serve.io.load_points`).

Record schema (version 1), one JSON object per line::

    {"v": 1, "t": 0.0183, "kind": "model", "sig": "9f0c…",
     "flush": 4, "backend": "thread", "cost": 1.07e-06,
     "q": {…}}                      # null when not reconstructible

``t`` is seconds since the recorder was attached (monotonic clock, so
replay can reproduce inter-arrival gaps); ``sig`` is the
:func:`repro.serve.tuning.signature_key` digest that joins the log
against flush spans and tuning profiles; ``cost`` is the *served*
C_tr in dollars — the bitwise parity target replay asserts against.
``q`` holds enough model parameters to rebuild the query
(:func:`record_to_query`); custom yield models that cannot be
serialized degrade to ``"q": null`` — the line still documents the
traffic shape, it just cannot be replayed.  A failed flush stamps
``"error"`` with the exception type and ``cost: null``.

Crash-safety contract: the writer appends whole lines and flushes the
OS buffer once per scheduler flush, so a crash can lose or truncate at
most the final line.  :func:`load_recorded_log` therefore tolerates
(and counts) an unparseable *final* line, while garbage earlier in the
file — which no crash can produce — raises
:class:`~repro.errors.ParameterError`.

This module deliberately imports nothing from :mod:`repro.serve` at
module level (the scheduler imports :mod:`repro.obs` first); the query
(de)serializers import it lazily.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from ..errors import ParameterError
from . import metrics as _metrics
from .state import enabled as _obs_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids the cycle
    from ..serve.query import CostQuery

__all__ = [
    "RECORD_VERSION",
    "QueryRecorder",
    "RecordedLog",
    "RecordedQuery",
    "is_recorded_log",
    "load_recorded_log",
    "load_recorded_queries",
    "query_to_record",
    "record_to_query",
]

#: Schema version stamped on every line; readers reject other versions.
RECORD_VERSION = 1


def _yield_law_registry() -> dict[str, type]:
    from ..yieldsim.models import (
        BoseEinsteinYield,
        CompoundPoissonGamma,
        HierarchicalYieldModel,
        MixtureYieldModel,
        MurphyYield,
        NegativeBinomialYield,
        PoissonYield,
        ReferenceAreaYield,
        SeedsYield,
    )
    return {cls.__name__: cls for cls in (
        PoissonYield, MurphyYield, SeedsYield, BoseEinsteinYield,
        NegativeBinomialYield, CompoundPoissonGamma,
        HierarchicalYieldModel, MixtureYieldModel, ReferenceAreaYield)}


def _yield_model_to_record(model: Any) -> dict[str, Any] | None:
    # Only the library's own frozen laws serialize: a subclass (or a
    # custom model) may override the math, and replaying it as the
    # base law would silently price different numbers.
    import dataclasses

    registry = _yield_law_registry()
    cls = registry.get(type(model).__name__)
    if cls is None or type(model) is not cls:
        return None
    if type(model).__name__ == "MixtureYieldModel":
        components = []
        for weight, member in model.components:
            sub = _yield_model_to_record(member)
            if sub is None:
                return None
            components.append([weight, sub])
        return {"law": "MixtureYieldModel", "components": components}
    return {"law": type(model).__name__,
            "params": {f.name: getattr(model, f.name)
                       for f in dataclasses.fields(model)}}


def _yield_model_from_record(data: dict[str, Any]) -> Any:
    registry = _yield_law_registry()
    law = data.get("law")
    cls = registry.get(law)
    if cls is None:
        raise ParameterError(f"unknown recorded yield law {law!r}")
    if law == "MixtureYieldModel":
        components = tuple(
            (float(weight), _yield_model_from_record(sub))
            for weight, sub in data.get("components", []))
        return cls(components=components)
    return cls(**data.get("params", {}))


def query_to_record(query: "CostQuery") -> dict[str, Any] | None:
    """Serialize one query's model parameters to the ``"q"`` payload.

    Returns ``None`` when the query cannot be rebuilt from JSON (a
    custom yield model, an unknown query kind) — the recorder then
    writes ``"q": null`` and the line is traffic-shape-only.
    """
    from ..serve.query import ChipletCostQuery, FabCostQuery, ModelCostQuery

    if isinstance(query, ChipletCostQuery):
        model = query.model
        fab = model.fab
        pk = model.packaging
        test = model.test
        return {
            "n": query.n_transistors,
            "lam": query.feature_size_um,
            "chiplet": {
                "chiplets": query.chiplets,
                "fab": {
                    "cost_growth_rate": fab.cost_growth_rate,
                    "reference_cost_dollars": fab.reference_cost_dollars,
                    "wafer_radius_cm": fab.wafer_radius_cm,
                    "design_density": fab.design_density,
                    "defect_coefficient": fab.defect_coefficient,
                    "size_exponent_p": fab.size_exponent_p,
                },
                "packaging": {
                    "name": pk.name,
                    "base_cost_dollars": pk.base_cost_dollars,
                    "cost_per_die_dollars": pk.cost_per_die_dollars,
                    "cost_per_cm2_dollars": pk.cost_per_cm2_dollars,
                    "bond_yield": pk.bond_yield,
                },
                "test": {
                    "tester_rate_dollars_per_hour":
                        test.tester_rate_dollars_per_hour,
                    "probe_base_seconds": test.probe_base_seconds,
                    "probe_seconds_per_kilotransistor":
                        test.probe_seconds_per_kilotransistor,
                    "final_base_seconds": test.final_base_seconds,
                    "final_seconds_per_kilotransistor":
                        test.final_seconds_per_kilotransistor,
                },
                "probe_coverage": model.probe_coverage,
            },
        }
    if isinstance(query, FabCostQuery):
        fab = query.fab
        return {
            "n": query.n_transistors,
            "lam": query.feature_size_um,
            "fab": {
                "cost_growth_rate": fab.cost_growth_rate,
                "reference_cost_dollars": fab.reference_cost_dollars,
                "wafer_radius_cm": fab.wafer_radius_cm,
                "design_density": fab.design_density,
                "defect_coefficient": fab.defect_coefficient,
                "size_exponent_p": fab.size_exponent_p,
            },
        }
    if isinstance(query, ModelCostQuery):
        if query.yield_value is not None:
            yield_spec: dict[str, Any] | None = {"value": query.yield_value}
        else:
            yield_spec = _yield_model_to_record(query.yield_model)
            if yield_spec is None:
                return None
        model = query.model
        wc = model.wafer_cost
        return {
            "n": query.n_transistors,
            "lam": query.feature_size_um,
            "wafer": {
                "radius_cm": model.wafer.radius_cm,
                "edge_exclusion_cm": model.wafer.edge_exclusion_cm,
            },
            "wafer_cost": {
                "reference_cost_dollars": wc.reference_cost_dollars,
                "cost_growth_rate": wc.cost_growth_rate,
                "reference_feature_um": wc.reference_feature_um,
                "overhead_dollars": wc.overhead_dollars,
                "generation_model": wc.generation_model.name,
                "shrink": wc.shrink,
                "linear_step_um": wc.linear_step_um,
            },
            "volume_wafers": model.volume_wafers,
            "design_density": query.design_density,
            "aspect_ratio": query.aspect_ratio,
            "defect_density_per_cm2": query.defect_density_per_cm2,
            "yield": yield_spec,
        }
    return None


def record_to_query(data: dict[str, Any]) -> "CostQuery":
    """Rebuild a query from a ``"q"`` payload written by the recorder.

    The inverse of :func:`query_to_record`: the rebuilt query has an
    equal :meth:`~repro.serve.query.CostQuery.signature` and
    :meth:`~repro.serve.query.CostQuery.point` (floats round-trip
    exactly through JSON's shortest-repr encoding), so a replayed log
    coalesces identically to the live traffic it recorded.  Raises
    :class:`~repro.errors.ParameterError` on a malformed payload.
    """
    from ..core.optimization import FabCharacterization
    from ..core.transistor_cost import TransistorCostModel
    from ..core.wafer_cost import GenerationModel, WaferCostModel
    from ..geometry.wafer import Wafer
    from ..manufacturing.test_cost import TestCostModel
    from ..serve.query import ChipletCostQuery, FabCostQuery, ModelCostQuery
    from ..system.chiplet import ChipletCostModel, PackagingTech

    if not isinstance(data, dict):
        raise ParameterError(
            f"recorded query payload must be an object, got {data!r}")
    try:
        if "chiplet" in data:
            spec = data["chiplet"]
            return ChipletCostQuery(
                n_transistors=data["n"],
                feature_size_um=data["lam"],
                chiplets=spec["chiplets"],
                model=ChipletCostModel(
                    fab=FabCharacterization(**spec["fab"]),
                    packaging=PackagingTech(**spec["packaging"]),
                    test=TestCostModel(**spec["test"]),
                    probe_coverage=spec["probe_coverage"]))
        if "fab" in data:
            return FabCostQuery(
                n_transistors=data["n"],
                feature_size_um=data["lam"],
                fab=FabCharacterization(**data["fab"]))
        wc_data = dict(data["wafer_cost"])
        wc_data["generation_model"] = \
            GenerationModel[wc_data["generation_model"]]
        yield_spec = data["yield"]
        if "value" in yield_spec:
            yield_model = None
            yield_value = yield_spec["value"]
        else:
            yield_model = _yield_model_from_record(yield_spec)
            yield_value = None
        return ModelCostQuery(
            n_transistors=data["n"],
            feature_size_um=data["lam"],
            model=TransistorCostModel(
                wafer_cost=WaferCostModel(**wc_data),
                wafer=Wafer(**data["wafer"]),
                volume_wafers=data.get("volume_wafers")),
            design_density=data["design_density"],
            yield_model=yield_model,
            defect_density_per_cm2=data.get("defect_density_per_cm2"),
            yield_value=yield_value,
            aspect_ratio=data.get("aspect_ratio", 1.0))
    except ParameterError:
        raise
    except Exception as exc:
        raise ParameterError(
            f"malformed recorded query payload: {exc}") from None


class QueryRecorder:
    """Append-only JSONL writer for served traffic.

    Attached to a scheduler via ``MicroBatchScheduler(record=PATH)``;
    the flusher calls :meth:`record_flush` once per flush with every
    ticket it completed.  The file is opened in append mode (recording
    across restarts accumulates into one log) and flushed to the OS
    after each scheduler flush, so a crash loses at most the final
    line — the tolerance :func:`load_recorded_log` is built around.

    The recorder must never take the flusher thread down: per-query
    serialization failures degrade to ``"q": null`` lines (counted in
    :attr:`unreplayable`), and an I/O failure disables further writes
    (:attr:`failed`) instead of raising into the flush loop.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        #: Monotonic instant arrival offsets are measured from.
        self.epoch = time.perf_counter()
        #: Lines successfully written so far.
        self.written = 0
        #: Lines whose query could not be serialized (``"q": null``).
        self.unreplayable = 0
        #: Set on the first I/O error; recording stops, serving continues.
        self.failed = False
        self._closed = False

    def record_flush(self, flush_id: int,
                     entries: Iterable[tuple[float, "CostQuery", str,
                                             str, float | None,
                                             str | None]]) -> int:
        """Append one line per completed ticket of one flush.

        ``entries`` yields ``(t_submit, query, sig_key, backend, cost,
        error)`` tuples — ``t_submit`` on the recorder's clock
        (``time.perf_counter()``), ``cost`` the served C_tr (``None``
        if the flush failed, with ``error`` naming the exception
        type).  Returns the number of lines written; never raises.
        """
        lines = []
        n_unreplayable = 0
        for t_submit, query, sig_key, backend, cost, error in entries:
            try:
                payload = query_to_record(query)
            except Exception:
                payload = None
            if payload is None:
                n_unreplayable += 1
            rec: dict[str, Any] = {
                "v": RECORD_VERSION,
                "t": max(0.0, t_submit - self.epoch),
                "kind": query.kind,
                "sig": sig_key,
                "flush": flush_id,
                "backend": backend,
                "cost": cost,
                "q": payload,
            }
            if error is not None:
                rec["error"] = error
            lines.append(json.dumps(rec))
        if not lines:
            return 0
        with self._lock:
            if self._closed or self.failed:
                return 0
            try:
                self._fh.write("\n".join(lines) + "\n")
                self._fh.flush()
            except (OSError, ValueError):
                # ValueError: writing on a descriptor something else
                # closed.  Either way: stop recording, keep serving.
                self.failed = True
                return 0
            self.written += len(lines)
            self.unreplayable += n_unreplayable
        if _obs_enabled():
            _metrics.inc("serve.record.lines", len(lines))
        return len(lines)

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.close()
            except OSError:
                self.failed = True


@dataclass(frozen=True)
class RecordedQuery:
    """One parsed line of a recorded-traffic log.

    ``query`` is the rebuilt :class:`~repro.serve.query.CostQuery`, or
    ``None`` for a line recorded with ``"q": null`` (traffic shape
    known, parameters not reconstructible).  ``cost`` is the served
    C_tr the original run produced — replay's bitwise parity target —
    and ``None`` when the recorded flush failed (see ``error``).
    """

    t: float
    kind: str
    sig: str
    flush: int
    backend: str | None
    cost: float | None
    query: "CostQuery | None"
    error: str | None = None


@dataclass(frozen=True)
class RecordedLog:
    """A fully parsed recorded-traffic log.

    ``truncated_lines`` counts the tolerated unparseable final line
    (0 or 1 — the crash-safety allowance); ``unreplayable`` counts
    lines whose query could not be rebuilt.  :meth:`replayable`
    filters to the records replay can actually re-drive.
    """

    path: Path
    records: list[RecordedQuery] = field(default_factory=list)
    truncated_lines: int = 0
    unreplayable: int = 0

    def replayable(self) -> list[RecordedQuery]:
        """The records with a rebuilt query, in recorded order."""
        return [r for r in self.records if r.query is not None]

    def __len__(self) -> int:
        return len(self.records)


def load_recorded_log(path: str | os.PathLike) -> RecordedLog:
    """Parse a recorder JSONL file into a :class:`RecordedLog`.

    Tolerates an unparseable or truncated *final* line (the most a
    crash mid-append can leave behind) and counts it; malformed JSON
    anywhere else, an unknown schema version, or a corrupt query
    payload raise :class:`~repro.errors.ParameterError`.
    """
    p = Path(path)
    if not p.exists():
        raise ParameterError(f"recorded log not found: {p}")
    raw_lines = p.read_text(encoding="utf-8").splitlines()
    records: list[RecordedQuery] = []
    truncated = 0
    unreplayable = 0
    last_index = len(raw_lines) - 1
    for i, line in enumerate(raw_lines):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except ValueError:
            if i == last_index:
                truncated = 1
                break
            raise ParameterError(
                f"{p}:{i + 1}: corrupt record line (not valid JSON)"
            ) from None
        if not isinstance(data, dict) or data.get("v") != RECORD_VERSION:
            raise ParameterError(
                f"{p}:{i + 1}: unsupported record version "
                f"{data.get('v') if isinstance(data, dict) else data!r} "
                f"(this build reads version {RECORD_VERSION})")
        payload = data.get("q")
        query = record_to_query(payload) if payload is not None else None
        if query is None:
            unreplayable += 1
        records.append(RecordedQuery(
            t=float(data.get("t", 0.0)),
            kind=str(data.get("kind", "")),
            sig=str(data.get("sig", "")),
            flush=int(data.get("flush", 0)),
            backend=data.get("backend"),
            cost=data.get("cost"),
            query=query,
            error=data.get("error")))
    return RecordedLog(path=p, records=records, truncated_lines=truncated,
                       unreplayable=unreplayable)


def load_recorded_queries(path: str | os.PathLike) -> list["CostQuery"]:
    """The replayable queries of a recorded log, in recorded order.

    The prewarm entry point:
    :meth:`repro.batch.cache.BatchCache.prewarm` feeds these straight
    back through the serve executor.
    """
    return [r.query for r in load_recorded_log(path).records
            if r.query is not None]


def is_recorded_log(path: str | os.PathLike) -> bool:
    """Sniff whether a file is a recorder JSONL log.

    Reads the first non-empty line and checks for the record shape (a
    JSON object carrying ``"v"`` and ``"kind"``), distinguishing the
    recorded format from the legacy points files of
    :func:`repro.serve.io.load_points`.  Any read or parse failure
    answers ``False`` — callers fall back to the legacy loader.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                if line.strip():
                    data = json.loads(line)
                    return (isinstance(data, dict) and "v" in data
                            and "kind" in data)
    except (OSError, ValueError):
        return False
    return False
