"""Zero-dependency span tracer: nested, thread-safe, process-mergeable.

A *span* is one named, timed region of execution with arbitrary
key/value attributes.  Spans nest: the currently open span is tracked
in a :mod:`contextvars` variable, so concurrent threads (and asyncio
tasks) each maintain their own ancestry without locking on the hot
path.  Finished spans are appended to a process-wide :class:`Tracer`
and can be exported as JSON lines (:func:`write_trace_jsonl`) or
rendered as a tree (:func:`format_trace_tree`).

Spans from worker *processes* (the sharded Monte Carlo paths) are
collected in the child via :mod:`repro.obs.capture`, shipped back as
plain dicts, and re-parented under the parent's current span by
:meth:`Tracer.adopt` — the merged trace reads as one tree regardless
of how the work was scheduled.

Everything is a no-op while ``repro.obs.state.STATE.tracing`` is
False: ``span(...)`` still constructs (cheaply), but ``__enter__``
returns immediately without touching the clock or the record list.
"""

from __future__ import annotations

import contextvars
import functools
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .state import STATE

#: The span id of the innermost open span in this thread/task.
_CURRENT: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_current_span", default=None)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``start_s`` is ``time.perf_counter()`` at entry — monotonic, and on
    Linux (CLOCK_MONOTONIC) comparable across the processes of one
    host, so merged child spans order correctly against parent spans.
    ``parent_id`` is ``None`` for root spans.  ``pid`` records the
    process that *executed* the span, which survives cross-process
    adoption — a merged trace shows which worker ran which wafer.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    thread_id: int = 0
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready plain dict (also the cross-process wire form)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "thread_id": self.thread_id,
            "error": self.error,
        }


class Tracer:
    """A lock-protected, append-only collection of finished spans.

    One process-wide instance backs the module-level API; private
    instances are only used by tests.  ``push_isolated`` /
    ``pop_isolated`` swap the backing storage so a worker (child
    process, or the sequential fallback running in-process) can collect
    its spans separately and ship them to the parent for adoption.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._next_id = 1

    def new_id(self) -> int:
        """A fresh, process-locally-unique span id."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def add(self, record: SpanRecord) -> None:
        """Append one finished span."""
        with self._lock:
            self._records.append(record)

    def records(self) -> list[SpanRecord]:
        """A snapshot copy of every finished span, in finish order."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        """Drop all collected spans (ids keep increasing)."""
        with self._lock:
            self._records.clear()

    def adopt(self, span_dicts: Iterable[dict[str, Any]],
              parent_id: int | None) -> None:
        """Merge spans exported by another collector into this trace.

        Ids are re-assigned from this tracer's sequence (child
        processes number their spans independently, so the originals
        may collide); internal parent links are remapped, and spans
        that were roots in the child become children of ``parent_id``.
        """
        spans = list(span_dicts)
        with self._lock:
            mapping: dict[int, int] = {}
            for rec in spans:
                mapping[rec["span_id"]] = self._next_id
                self._next_id += 1
            for rec in spans:
                old_parent = rec.get("parent_id")
                new_parent = mapping.get(old_parent, parent_id) \
                    if old_parent is not None else parent_id
                self._records.append(SpanRecord(
                    span_id=mapping[rec["span_id"]],
                    parent_id=new_parent,
                    name=rec["name"],
                    start_s=rec["start_s"],
                    duration_s=rec["duration_s"],
                    attrs=dict(rec.get("attrs", {})),
                    pid=rec.get("pid", 0),
                    thread_id=rec.get("thread_id", 0),
                    error=rec.get("error")))

    def push_isolated(self) -> tuple[list[SpanRecord], "contextvars.Token"]:
        """Swap in empty storage; returns a frame for ``pop_isolated``.

        Also resets the current-span context so spans recorded in the
        isolated window are roots (their eventual parent is decided at
        adoption time).
        """
        token = _CURRENT.set(None)
        with self._lock:
            old = self._records
            self._records = []
        return old, token

    def pop_isolated(self, frame: tuple[list[SpanRecord],
                                        "contextvars.Token"],
                     ) -> list[dict[str, Any]]:
        """Restore storage swapped by ``push_isolated``.

        Returns the spans collected while isolated, as wire-form dicts.
        """
        old, token = frame
        with self._lock:
            captured = self._records
            self._records = old
        _CURRENT.reset(token)
        return [r.to_dict() for r in captured]


#: The process-wide tracer behind the module-level API.
_TRACER = Tracer()


class span:
    """Context manager *and* decorator marking one traced region.

    Usage::

        with span("mc.shard", wafers=4):
            ...

        @span("core.optimal_feature_size")
        def optimal_feature_size(...): ...

    When tracing is disabled (the default) both forms cost one flag
    check.  A ``span`` instance is single-use as a context manager
    (create a new one per ``with``); the decorator form creates a
    fresh span per call and re-checks the flag at call time, so
    decorated functions respond to runtime enable/disable.
    """

    __slots__ = ("name", "attrs", "_active", "_span_id", "_parent_id",
                 "_token", "_t0")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self._active = False

    def __enter__(self) -> "span":
        """Open the span (no-op unless tracing is enabled)."""
        if not STATE.tracing:
            self._active = False
            return self
        self._active = True
        self._parent_id = _CURRENT.get()
        self._span_id = _TRACER.new_id()
        self._token = _CURRENT.set(self._span_id)
        self._t0 = time.perf_counter()
        return self

    def annotate(self, **attrs: Any) -> "span":
        """Attach attributes to an *open* span (key → scalar).

        Lets code stamp facts that are only known mid-region — a flush
        span learns which backends executed its groups only after they
        ran.  Merged into the attributes given at construction (same
        keys overwrite) and exported with the span in the JSONL /
        tree forms.  A no-op while tracing is disabled, so callers can
        annotate unconditionally; returns ``self`` for chaining.
        """
        if self._active:
            self.attrs = {**self.attrs, **attrs}
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span, recording duration and any exception type."""
        if not self._active:
            return False
        duration = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        _TRACER.add(SpanRecord(
            span_id=self._span_id,
            parent_id=self._parent_id,
            name=self.name,
            start_s=self._t0,
            duration_s=duration,
            attrs=dict(self.attrs),
            pid=os.getpid(),
            thread_id=threading.get_ident(),
            error=exc_type.__name__ if exc_type is not None else None))
        self._active = False
        return False

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: trace every call of ``fn`` under this name."""
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not STATE.tracing:
                return fn(*args, **kwargs)
            with span(self.name, **self.attrs):
                return fn(*args, **kwargs)
        return wrapper


def current_span_id() -> int | None:
    """Id of the innermost open span in this thread/task, or ``None``."""
    return _CURRENT.get()


def get_trace() -> list[SpanRecord]:
    """All spans finished so far in this process, in finish order."""
    return _TRACER.records()


def clear_trace() -> None:
    """Drop every collected span."""
    _TRACER.clear()


def _json_default(value: Any) -> str:
    return str(value)


def write_trace_jsonl(path: str | os.PathLike) -> int:
    """Write the trace as JSON lines (one span per line).

    Attribute values that are not JSON-serializable are stringified.
    Returns the number of spans written.
    """
    records = _TRACER.records()
    with open(path, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec.to_dict(), default=_json_default))
            fh.write("\n")
    return len(records)


def format_trace_tree(records: Iterable[SpanRecord] | None = None) -> str:
    """Render spans as an indented tree with durations and attributes.

    ``records`` defaults to the process-wide trace.  Orphans (spans
    whose parent was never recorded, e.g. after a partial ``clear``)
    are promoted to roots rather than dropped.
    """
    recs = list(records) if records is not None else _TRACER.records()
    if not recs:
        return "(no spans recorded)"
    by_id = {r.span_id: r for r in recs}
    children: dict[int | None, list[SpanRecord]] = {}
    for rec in recs:
        parent = rec.parent_id if rec.parent_id in by_id else None
        children.setdefault(parent, []).append(rec)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.start_s)
    lines: list[str] = []

    def _label(rec: SpanRecord) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in rec.attrs.items())
        extra = f"  [{attrs}]" if attrs else ""
        err = f"  !{rec.error}" if rec.error else ""
        return (f"{rec.name}{extra}{err}  "
                f"— {rec.duration_s * 1e3:.3f} ms  (pid {rec.pid})")

    def _walk(rec: SpanRecord, prefix: str, tail: bool,
              is_root: bool) -> None:
        if is_root:
            lines.append(_label(rec))
            child_prefix = ""
        else:
            lines.append(prefix + ("└─ " if tail else "├─ ") + _label(rec))
            child_prefix = prefix + ("   " if tail else "│  ")
        kids = children.get(rec.span_id, [])
        for i, kid in enumerate(kids):
            _walk(kid, child_prefix, i == len(kids) - 1, False)

    for root in children.get(None, []):
        _walk(root, "", True, True)
    return "\n".join(lines)


def adopt_spans(span_dicts: Iterable[dict[str, Any]],
                parent_id: int | None = None) -> None:
    """Merge wire-form spans from another process into this trace.

    ``parent_id`` defaults to the caller's innermost open span, so a
    parent that is inside ``with span("mc.simulate_lot")`` adopts its
    workers' spans as children of that lot span.
    """
    if parent_id is None:
        parent_id = _CURRENT.get()
    _TRACER.adopt(span_dicts, parent_id)
