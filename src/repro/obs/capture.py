"""Cross-process observability capture for sharded workloads.

The sharded Monte Carlo paths run shard functions either in worker
processes (the happy path) or in-process (the ``workers=1`` schedule
and the pool-failure fallback).  Either way, the shard's spans and
metrics must end up in the *parent's* trace and registry, re-parented
under the span that launched the work.  The protocol:

* the parent computes :func:`capture_flags` and ships it with the
  shard (a plain tuple, picklable, ``None`` when observability is
  off — workers then skip all bookkeeping);
* the shard function brackets its work with :func:`begin_capture` /
  :func:`end_capture`, which force the requested flags on, swap in
  fresh span/metric storage, and return everything recorded as one
  plain-dict payload (pickles across the pool boundary);
* the parent calls :func:`absorb` on each returned payload, adopting
  the spans under its current span and merging the metric deltas.

Because the *same* bracket runs in-process during the sequential
fallback, a fallback run produces an equivalent span tree and
identical metric totals to a pooled run — asserted by
``tests/obs/test_process_merge.py``.
"""

from __future__ import annotations

from typing import Any

from . import trace as _trace
from .registry import metrics
from .state import STATE

#: What a shard should capture: (tracing, metrics) flags, or None.
CaptureFlags = "tuple[bool, bool] | None"


def capture_flags() -> tuple[bool, bool] | None:
    """The flags a worker should capture under, or ``None`` when off.

    Computed in the parent and shipped with the shard so capture works
    even when the child process does not inherit the parent's
    programmatic ``enable()`` state (e.g. spawn-based pools).
    """
    if not (STATE.tracing or STATE.metrics):
        return None
    return (STATE.tracing, STATE.metrics)


def begin_capture(flags: tuple[bool, bool]) -> tuple:
    """Start collecting spans/metrics into fresh, isolated storage.

    Forces the requested enablement flags on (saving the previous
    state) so capture works in spawn-children that never saw the
    parent's ``enable()`` call.  Returns an opaque frame for
    :func:`end_capture`.  Frames nest (the storage swap is a stack
    discipline), but a shard normally opens exactly one.
    """
    trace_on, metrics_on = flags
    frame = (_trace._TRACER.push_isolated(),
             metrics.push_isolated(),
             STATE.tracing, STATE.metrics)
    STATE.tracing, STATE.metrics = trace_on, metrics_on
    return frame


def end_capture(frame: tuple) -> dict[str, Any]:
    """Stop an isolated capture and export what it collected.

    Restores the storage and enablement flags saved by
    :func:`begin_capture` and returns a picklable payload
    (``{"spans": [...], "metrics": {...}}``) for :func:`absorb`.
    """
    tracer_frame, metrics_frame, trace_flag, metrics_flag = frame
    spans = _trace._TRACER.pop_isolated(tracer_frame)
    snapshot = metrics.pop_isolated(metrics_frame)
    STATE.tracing, STATE.metrics = trace_flag, metrics_flag
    return {"spans": spans, "metrics": snapshot}


def absorb(payload: dict[str, Any] | None) -> None:
    """Merge a worker's capture payload into this process's trace/metrics.

    Spans are adopted under the caller's current span; metric counters
    and histogram summaries add into the process-wide registry.  A
    ``None`` payload (observability was off when the shard ran) is a
    no-op, as are the halves whose instrumentation is disabled here.
    """
    if not payload:
        return
    if STATE.tracing and payload.get("spans"):
        _trace.adopt_spans(payload["spans"])
    if STATE.metrics and payload.get("metrics"):
        metrics.merge(payload["metrics"])
