"""Enablement state for :mod:`repro.obs` — the disabled fast path.

All instrumentation in the hot paths (the batch engine, the cache, the
Monte Carlo shards) is guarded by the two booleans held here, so the
cost of *disabled* observability is one attribute read per hook.  The
flags initialize from the environment (``REPRO_TRACE=1`` /
``REPRO_METRICS=1``) so a traced run needs no code changes, and can be
flipped programmatically via :func:`enable` / :func:`disable` (which is
what the CLI's ``--trace`` / ``--metrics`` flags do).

The ``<3%`` disabled-overhead contract is asserted by
``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os

_FALSEY = ("", "0", "false", "no", "off")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in _FALSEY


class ObsState:
    """The two observability switches: span tracing and metrics.

    A plain two-slot object rather than module globals so the hot-path
    guards (``STATE.tracing`` / ``STATE.metrics``) stay a single
    attribute read and the whole state can be saved/restored atomically
    by the cross-process capture machinery.
    """

    __slots__ = ("tracing", "metrics")

    def __init__(self, tracing: bool = False, metrics: bool = False) -> None:
        self.tracing = tracing
        self.metrics = metrics


#: Process-wide switches, initialized from REPRO_TRACE / REPRO_METRICS.
STATE = ObsState(tracing=_env_flag("REPRO_TRACE"),
                 metrics=_env_flag("REPRO_METRICS"))


def enabled() -> bool:
    """True when *any* instrumentation (tracing or metrics) is active.

    This is the fast-path guard the hot call sites use to decide
    whether to time themselves at all.
    """
    return STATE.tracing or STATE.metrics


def tracing_enabled() -> bool:
    """True when span tracing is active."""
    return STATE.tracing


def metrics_enabled() -> bool:
    """True when the metrics registry is recording."""
    return STATE.metrics


def enable(*, trace: bool = True, metrics: bool = True) -> None:
    """Turn instrumentation on (both kinds by default).

    ``enable(trace=False, metrics=True)`` records metrics only; the
    span hooks stay no-ops.  Assigns both flags — it does not OR them
    into the current state.
    """
    STATE.tracing = bool(trace)
    STATE.metrics = bool(metrics)


def disable() -> None:
    """Turn all instrumentation off (the default state)."""
    STATE.tracing = False
    STATE.metrics = False
