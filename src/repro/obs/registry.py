"""Process-wide metrics: counters, gauges, and summary histograms.

:class:`MetricsRegistry` is a thread-safe, name-keyed collection of
three metric kinds:

* **Counter** — a monotonically increasing total
  (``batch.cache.hits``, ``mc.wafers_simulated``),
* **Gauge** — a last-written value (``batch.cache.entries``),
* **Histogram** — a running summary of observations: count, sum, min,
  max, mean (``mc.worker.wall_seconds``).

The process-wide instance is exported as ``repro.obs.metrics`` and is
*gated*: its ``inc`` / ``set_gauge`` / ``observe`` helpers no-op unless
metrics are enabled (``REPRO_METRICS=1`` or
:func:`repro.obs.enable`), which is what makes the hot-path hooks
near-free when observability is off.  Privately constructed registries
(``MetricsRegistry()``) are ungated and always record — useful in
tests and for library consumers keeping their own books.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain nested dicts —
JSON-ready, and the wire form merged across processes by
:meth:`MetricsRegistry.merge` when Monte Carlo shards report back.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterator

from .state import STATE


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` (default 1) to the total."""
        self.value += n


class Gauge:
    """A last-written value (not aggregated, just stored)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        self.value = value


class Histogram:
    """A running summary of observations: count, sum, min, max.

    Deliberately a summary rather than a bucketed histogram — the
    consumers here (per-worker wall times, per-call cell counts) need
    totals and extremes, and a summary merges exactly across
    processes.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        """JSON-ready summary (min/max omitted via ``None`` when empty)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A thread-safe, name-keyed collection of metrics.

    ``gated=True`` (the process-wide ``repro.obs.metrics`` instance)
    makes the writer helpers — :meth:`inc`, :meth:`set_gauge`,
    :meth:`observe` — no-ops unless metrics are enabled, so
    instrumented hot paths cost one flag check when observability is
    off.  The accessor methods (:meth:`counter` etc.) and readers
    always work.
    """

    def __init__(self, *, gated: bool = False) -> None:
        self.gated = gated
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            return metric

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            return metric

    # -- gated writers (the hot-path entry points) ----------------------
    def inc(self, name: str, n: int | float = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op when gated off)."""
        if self.gated and not STATE.metrics:
            return
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter()
            metric.inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (no-op when gated off)."""
        if self.gated and not STATE.metrics:
            return
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge()
            metric.set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name`` (no-op when gated off)."""
        if self.gated and not STATE.metrics:
            return
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram()
            metric.observe(value)

    # -- readers ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready nested dict of every metric's current value.

        Shape: ``{"counters": {name: total}, "gauges": {name: value},
        "histograms": {name: {count, sum, min, max, mean}}}``.  This is
        also the wire form consumed by :meth:`merge`.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {k: h.to_dict()
                               for k, h in self._histograms.items()},
            }

    def rows(self) -> list[tuple[str, float]]:
        """Flat, name-sorted ``(metric, value)`` rows for table display.

        Histograms expand to ``name.count`` / ``name.mean`` /
        ``name.min`` / ``name.max`` / ``name.sum`` rows.
        """
        snap = self.snapshot()
        out: list[tuple[str, float]] = []
        for name, value in snap["counters"].items():
            out.append((name, value))
        for name, value in snap["gauges"].items():
            out.append((name, value))
        for name, summary in snap["histograms"].items():
            out.append((f"{name}.count", summary["count"]))
            out.append((f"{name}.mean", summary["mean"]))
            if summary["count"]:
                out.append((f"{name}.min", summary["min"]))
                out.append((f"{name}.max", summary["max"]))
            out.append((f"{name}.sum", summary["sum"]))
        return sorted(out)

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram summaries add; gauges take the incoming
        value (last write wins).  This is how metrics recorded inside
        worker processes reach the parent registry.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            with self._lock:
                hist.count += summary.get("count", 0)
                hist.total += summary.get("sum", 0.0)
                if summary.get("count"):
                    hist.min = min(hist.min, summary["min"])
                    hist.max = max(hist.max, summary["max"])

    def reset(self) -> None:
        """Drop every registered metric (names and values)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __iter__(self) -> Iterator[str]:
        """Iterate all registered metric names."""
        with self._lock:
            names = (list(self._counters) + list(self._gauges)
                     + list(self._histograms))
        return iter(names)

    # -- isolation frames (cross-process capture) ------------------------
    def push_isolated(self) -> tuple[dict, dict, dict]:
        """Swap in empty storage; returns a frame for ``pop_isolated``."""
        with self._lock:
            frame = (self._counters, self._gauges, self._histograms)
            self._counters, self._gauges, self._histograms = {}, {}, {}
        return frame

    def pop_isolated(self, frame: tuple[dict, dict, dict]) -> dict[str, Any]:
        """Restore storage swapped by ``push_isolated``.

        Returns the snapshot of everything recorded while isolated.
        """
        captured = self.snapshot()
        with self._lock:
            self._counters, self._gauges, self._histograms = frame
        return captured


#: The process-wide, gated registry the instrumentation hooks write to.
metrics = MetricsRegistry(gated=True)
