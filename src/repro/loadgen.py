"""Open-loop load generator for the HTTP serving front-end.

Closed-loop drivers (issue, wait, issue) hide queueing delay: when the
server slows down, the driver slows with it and the measured latency
flatters the system.  This generator is *open-loop*: request arrival
instants are drawn up front from a Poisson process at the target RPS
and every request's latency is measured **from its scheduled arrival
instant** — time spent waiting for a free connection counts against
the server, exactly as a real user would experience it
(coordinated-omission-free, the Jain/Wilkes convention).

The workload mixes the POST endpoints of :mod:`repro.serve.http` —
single ``/v1/cost`` bodies (alternating the recorded-query
``{"q": ...}`` form and bare point fields), ``/v1/cost/bulk``
batches, ``/v1/optimize``, and (opt-in via ``mix``) ``/v1/chiplet``
assemblies — drawn from the same Fig.-8 design-point grid as
``benchmarks/bench_serve.py``.  With
``verify=True`` (the default) every returned cost is compared
**bitwise** against :func:`~repro.serve.query.scalar_reference_cost`;
the scalar references are computed once per unique grid point, so
verification stays cheap even at thousands of requests.

Use it from the CLI (``python -m repro loadgen --port ...``), from
``benchmarks/bench_http.py``, or programmatically::

    from repro.loadgen import build_workload, run_load

    specs = build_workload(1000, seed=7)
    result = run_load("127.0.0.1", port, specs, rps=2000.0)
    assert result.mismatches == 0
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from .errors import ParameterError
from .obs.recording import query_to_record
from .serve.http import chiplet_point_to_query, point_to_query
from .serve.query import ChipletCostQuery, FabCostQuery, scalar_reference_cost

__all__ = [
    "LoadResult",
    "RequestSpec",
    "build_workload",
    "format_report",
    "run_load",
]

#: Default endpoint mix (fractions of requests); bulk requests carry
#: ``bulk_size`` points each, so the *point* mix skews heavily bulk.
#: ``chiplet`` ships at weight 0 — opt in with ``--mix chiplet=0.2``.
DEFAULT_MIX = {"cost": 0.7, "bulk": 0.2, "optimize": 0.1, "chiplet": 0.0}

#: λ grid (µm) and N_tr grid shared with bench_serve's design points.
_LAMS = [0.4 + 0.125 * i for i in range(8)]
_COUNTS = [1.0e5 * 4.0 ** j for j in range(6)]
_DIE_AREAS = [0.25, 0.5, 1.0, 2.0]
#: Chiplet-count and packaging grids for the ``chiplet`` workload kind.
_CHIPLET_COUNTS = [2, 3, 4, 8]
_PACKAGINGS = ["organic", "interposer"]


@dataclass(frozen=True)
class RequestSpec:
    """One request to issue: target, encoded body, expected answers.

    ``expected`` holds the scalar-reference costs in served order
    (``None`` entries skip the bitwise check — used for optimize,
    whose reference is attached lazily by :func:`run_load` only when
    verification is on).
    """

    kind: str                     # "cost" | "bulk" | "optimize"
    target: str
    body: str
    expected: tuple[float, ...] | None = None
    die_areas: tuple[float, ...] | None = None  # optimize only


def _reference_costs(points: Sequence[tuple[float, float]],
                     cache: dict[tuple[float, float], float]) -> tuple:
    out = []
    for n, lam in points:
        key = (n, lam)
        if key not in cache:
            cache[key] = scalar_reference_cost(FabCostQuery(n, lam))
        out.append(cache[key])
    return tuple(out)


def _point_reference(n: float, lam: float,
                     cache: dict[tuple[float, float], float]) -> float:
    """Scalar reference for a bare point-field body (server defaults)."""
    key = ("point", n, lam)
    if key not in cache:
        cache[key] = scalar_reference_cost(point_to_query(
            {"transistors": n, "feature_size": lam}))
    return cache[key]


def _chiplet_reference(query: ChipletCostQuery,
                       cache: dict[Any, float]) -> float:
    """Scalar reference for one chiplet assembly query."""
    key = ("chiplet", query.n_transistors, query.feature_size_um,
           query.signature())
    if key not in cache:
        cache[key] = scalar_reference_cost(query)
    return cache[key]


def build_workload(n_requests: int, *,
                   mix: dict[str, float] | None = None,
                   bulk_size: int = 32,
                   seed: int = 0) -> list[RequestSpec]:
    """Draw a reproducible mixed workload of ``n_requests`` requests.

    ``mix`` maps endpoint kind (``cost`` / ``bulk`` / ``optimize``) to
    its fraction; fractions are normalized.  Every spec carries its
    expected bitwise answer, computed here once per unique grid point.
    """
    if n_requests < 1:
        raise ParameterError("n_requests must be >= 1")
    if bulk_size < 1:
        raise ParameterError("bulk_size must be >= 1")
    mix = dict(DEFAULT_MIX if mix is None else mix)
    unknown = set(mix) - set(DEFAULT_MIX)
    if unknown:
        raise ParameterError(
            f"unknown workload kinds {sorted(unknown)} "
            f"(expected {sorted(DEFAULT_MIX)})")
    total = sum(mix.values())
    if total <= 0:
        raise ParameterError("workload mix fractions must sum > 0")
    rng = random.Random(seed)
    kinds = sorted(mix)
    weights = [mix[k] / total for k in kinds]
    ref_cache: dict[Any, float] = {}
    specs: list[RequestSpec] = []
    for i in range(n_requests):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "cost":
            n = rng.choice(_COUNTS)
            lam = rng.choice(_LAMS)
            if i % 2:  # bare point fields → server-default model
                body = json.dumps({"transistors": n, "feature_size": lam})
                expected = (_point_reference(n, lam, ref_cache),)
            else:      # full recorded-query payload → Fig.-8 fab
                body = json.dumps(
                    {"q": query_to_record(FabCostQuery(n, lam))})
                expected = _reference_costs([(n, lam)], ref_cache)
            specs.append(RequestSpec("cost", "/v1/cost", body, expected))
        elif kind == "chiplet":
            n = rng.choice(_COUNTS)
            lam = rng.choice(_LAMS)
            k = rng.choice(_CHIPLET_COUNTS)
            packaging = rng.choice(_PACKAGINGS)
            if i % 2:  # bare point fields → server-default chiplet model
                fields = {"transistors": n, "feature_size": lam,
                          "chiplets": k, "packaging": packaging}
                body = json.dumps(fields)
                query = chiplet_point_to_query(fields)
            else:      # full recorded chiplet payload
                query = chiplet_point_to_query(
                    {"transistors": n, "feature_size": lam,
                     "chiplets": k, "packaging": packaging})
                body = json.dumps({"q": query_to_record(query)})
            specs.append(RequestSpec(
                "chiplet", "/v1/chiplet", body,
                (_chiplet_reference(query, ref_cache),)))
        elif kind == "bulk":
            points = [(rng.choice(_COUNTS), rng.choice(_LAMS))
                      for _ in range(bulk_size)]
            body = json.dumps({"queries": [
                query_to_record(FabCostQuery(n, lam))
                for n, lam in points]})
            specs.append(RequestSpec(
                "bulk", "/v1/cost/bulk", body,
                _reference_costs(points, ref_cache)))
        else:
            areas = tuple(rng.sample(_DIE_AREAS, k=2))
            body = json.dumps({"die_areas": list(areas)})
            specs.append(RequestSpec("optimize", "/v1/optimize", body,
                                     die_areas=areas))
    return specs


@dataclass
class LoadResult:
    """What the run measured: latency, throughput, error budget, parity."""

    requests: int
    completed: int
    status_counts: dict[str, int]
    timeouts: int
    connection_errors: int
    mismatches: int
    verified_costs: int
    duration_s: float
    offered_rps: float
    achieved_rps: float
    latency_ms: dict[str, float]    # p50 / p95 / p99 / mean / max

    @property
    def error_budget(self) -> dict[str, int]:
        """The non-200 tally the bench records: 429s + timeouts + drops."""
        return {
            "http_429": self.status_counts.get("429", 0),
            "timeouts": self.timeouts,
            "connection_errors": self.connection_errors,
            "other_non_200": sum(
                count for status, count in self.status_counts.items()
                if status not in ("200", "429")),
        }


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile (same convention as the benches)."""
    if not sorted_values:
        return float("nan")
    k = max(0, min(len(sorted_values) - 1,
                   int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[k]


class _Connection:
    """One pooled keep-alive client connection (lazily established)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None

    async def request(self, target: str, body: str) -> tuple[int, Any]:
        if self.writer is None:
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port)
        raw = body.encode()
        self.writer.write(
            (f"POST {target} HTTP/1.1\r\n"
             f"host: {self.host}:{self.port}\r\n"
             f"content-type: application/json\r\n"
             f"content-length: {len(raw)}\r\n\r\n").encode() + raw)
        await self.writer.drain()
        assert self.reader is not None
        head = await self.reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        closing = False
        for line in lines[1:]:
            name, _, value = line.partition(":")
            key = name.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and "close" in value.lower():
                closing = True
        payload = json.loads(await self.reader.readexactly(length)) \
            if length else None
        if closing:
            self.close()
        return status, payload

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None


def _served_costs(spec: RequestSpec, payload: Any) -> list[float]:
    if spec.kind in ("cost", "chiplet"):
        return [payload["cost_per_transistor_dollars"]]
    if spec.kind == "bulk":
        return list(payload["cost_per_transistor_dollars"])
    return []


def _optimize_mismatches(spec: RequestSpec, payload: Any,
                         cache: dict[Any, Any]) -> tuple[int, int]:
    """(checked, mismatched) for one optimize response, bitwise."""
    from .core.optimization import optimal_feature_size_for_die_area

    checked = mismatched = 0
    lams = payload["optimal_feature_size_um"]
    costs = payload["cost_per_transistor_dollars"]
    for area, lam, cost in zip(spec.die_areas or (), lams, costs):
        key = ("opt", area)
        if key not in cache:
            cache[key] = optimal_feature_size_for_die_area(area)
        ref_lam, ref_cost = cache[key]
        checked += 1
        if lam != ref_lam or cost != ref_cost:
            mismatched += 1
    return checked, mismatched


def run_load(host: str, port: int, specs: Sequence[RequestSpec], *,
             rps: float, connections: int = 8,
             timeout_s: float = 30.0, seed: int = 0,
             verify: bool = True) -> LoadResult:
    """Drive ``specs`` at Poisson-arrival ``rps``; measure and verify.

    Arrival instants are pre-drawn (seeded, exponential gaps), each
    request waits for a pooled connection *after* its arrival instant,
    and latency runs from that instant to the parsed response — the
    open-loop clock.  Responses are classified into status counts,
    timeouts (``timeout_s`` per request), and connection errors;
    ``verify=True`` bitwise-compares every served cost against its
    spec's scalar reference.
    """
    if rps <= 0:
        raise ParameterError("rps must be > 0")
    if connections < 1:
        raise ParameterError("connections must be >= 1")
    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    for _ in specs:
        t += rng.expovariate(rps)
        arrivals.append(t)

    status_counts: dict[str, int] = {}
    latencies: list[float] = []
    timeouts = connection_errors = mismatches = verified = 0
    opt_cache: dict[Any, Any] = {}

    async def _drive() -> float:
        nonlocal timeouts, connection_errors, mismatches, verified
        loop = asyncio.get_running_loop()
        pool: asyncio.Queue[_Connection] = asyncio.Queue()
        for _ in range(connections):
            pool.put_nowait(_Connection(host, port))
        start = loop.time()

        async def _issue(spec: RequestSpec, arrival: float) -> None:
            nonlocal timeouts, connection_errors, mismatches, verified
            due = start + arrival
            delay = due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            conn = await pool.get()
            try:
                status, payload = await asyncio.wait_for(
                    conn.request(spec.target, spec.body),
                    timeout=timeout_s)
            except asyncio.TimeoutError:
                timeouts += 1
                conn.close()
                return
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                connection_errors += 1
                conn.close()
                return
            finally:
                pool.put_nowait(conn)
            latencies.append((loop.time() - due) * 1e3)
            status_counts[str(status)] = \
                status_counts.get(str(status), 0) + 1
            if not verify or status != 200:
                return
            if spec.expected is not None:
                served = _served_costs(spec, payload)
                verified += len(served)
                mismatches += sum(
                    1 for got, want in zip(served, spec.expected)
                    if got != want)
                if len(served) != len(spec.expected):
                    mismatches += abs(len(served) - len(spec.expected))
            elif spec.kind == "optimize":
                checked, bad = _optimize_mismatches(spec, payload,
                                                    opt_cache)
                verified += checked
                mismatches += bad
        await asyncio.gather(*(_issue(s, a)
                               for s, a in zip(specs, arrivals)))
        duration = loop.time() - start
        while not pool.empty():
            pool.get_nowait().close()
        return duration

    duration = asyncio.run(_drive())
    latencies.sort()
    completed = len(latencies)
    return LoadResult(
        requests=len(specs),
        completed=completed,
        status_counts=dict(sorted(status_counts.items())),
        timeouts=timeouts,
        connection_errors=connection_errors,
        mismatches=mismatches,
        verified_costs=verified,
        duration_s=duration,
        offered_rps=rps,
        achieved_rps=completed / duration if duration > 0 else 0.0,
        latency_ms={
            "p50": _percentile(latencies, 0.50),
            "p95": _percentile(latencies, 0.95),
            "p99": _percentile(latencies, 0.99),
            "mean": (sum(latencies) / completed) if completed else
                    float("nan"),
            "max": latencies[-1] if latencies else float("nan"),
        })


def format_report(result: LoadResult) -> str:
    """Human-readable summary for the CLI."""
    lat = result.latency_ms
    lines = [
        f"requests:        {result.requests} issued, "
        f"{result.completed} completed",
        f"throughput:      {result.achieved_rps:.1f} achieved rps "
        f"(offered {result.offered_rps:.1f}) over {result.duration_s:.2f} s",
        f"latency [ms]:    p50={lat['p50']:.2f} p95={lat['p95']:.2f} "
        f"p99={lat['p99']:.2f} mean={lat['mean']:.2f} max={lat['max']:.2f}",
        f"status counts:   {result.status_counts}",
        f"error budget:    {result.error_budget}",
        f"parity:          {result.verified_costs} costs verified, "
        f"{result.mismatches} bitwise mismatches",
    ]
    return "\n".join(lines)
