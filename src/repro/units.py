"""Unit conversions and parameter validation helpers.

The paper mixes units freely — feature sizes in microns, die areas in
mm\N{SUPERSCRIPT TWO} and cm\N{SUPERSCRIPT TWO}, wafer radii in cm and
inches, costs in dollars.  This module pins down one internal convention
and provides explicit, named conversions so that every model in the
library states its units once and sticks to them.

Internal conventions used throughout :mod:`repro`:

* feature size ``lam`` — microns (µm)
* die linear dimensions — centimeters (cm)
* die and wafer areas — square centimeters (cm²)
* wafer radius — centimeters (cm)
* costs — US dollars ($)
* defect densities — defects per cm² unless a function says otherwise

Functions here never silently clamp: out-of-domain values raise
:class:`repro.errors.ParameterError`.
"""

from __future__ import annotations

import math

from .errors import ParameterError

#: Microns per centimeter.
UM_PER_CM = 1.0e4

#: Square microns per square centimeter.
UM2_PER_CM2 = 1.0e8

#: Square millimeters per square centimeter.
MM2_PER_CM2 = 1.0e2

#: Centimeters per inch (exact).
CM_PER_INCH = 2.54


def um_to_cm(microns: float) -> float:
    """Convert a length in microns to centimeters."""
    return microns / UM_PER_CM


def cm_to_um(cm: float) -> float:
    """Convert a length in centimeters to microns."""
    return cm * UM_PER_CM


def um2_to_cm2(um2: float) -> float:
    """Convert an area in square microns to square centimeters."""
    return um2 / UM2_PER_CM2


def cm2_to_um2(cm2: float) -> float:
    """Convert an area in square centimeters to square microns."""
    return cm2 * UM2_PER_CM2


def mm2_to_cm2(mm2: float) -> float:
    """Convert an area in square millimeters to square centimeters."""
    return mm2 / MM2_PER_CM2


def cm2_to_mm2(cm2: float) -> float:
    """Convert an area in square centimeters to square millimeters."""
    return cm2 * MM2_PER_CM2


def inch_to_cm(inches: float) -> float:
    """Convert a length in inches to centimeters."""
    return inches * CM_PER_INCH


def wafer_diameter_inch_to_radius_cm(diameter_inches: float) -> float:
    """Radius in cm of a wafer given its nominal diameter in inches.

    The paper's "6 inch wafer" corresponds to R_w = 7.62 cm; the paper
    rounds this to 7.5 cm in its numerical examples.
    """
    return inch_to_cm(diameter_inches) / 2.0


def wafer_area_cm2(radius_cm: float) -> float:
    """Gross area of a circular wafer of the given radius, in cm²."""
    require_positive("radius_cm", radius_cm)
    return math.pi * radius_cm * radius_cm


def dollars_to_microdollars(dollars: float) -> float:
    """Convert dollars to the paper's Table-3 unit of $·10⁻⁶."""
    return dollars * 1.0e6


def microdollars_to_dollars(microdollars: float) -> float:
    """Convert the paper's Table-3 unit of $·10⁻⁶ back to dollars."""
    return microdollars / 1.0e6


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero.

    Returns the value so the call can be used inline in assignments.
    """
    _require_finite(name, value)
    if value <= 0:
        raise ParameterError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    _require_finite(name, value)
    if value < 0:
        raise ParameterError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(name: str, value: float, *, inclusive_low: bool = True,
                     inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in the unit interval.

    ``inclusive_low`` / ``inclusive_high`` control whether the endpoints
    0 and 1 are permitted (yields of exactly 0 are usually nonsense as a
    divisor, so callers dividing by a yield pass ``inclusive_low=False``).
    """
    _require_finite(name, value)
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        low_bracket = "[" if inclusive_low else "("
        high_bracket = "]" if inclusive_high else ")"
        raise ParameterError(
            f"{name} must be in {low_bracket}0, 1{high_bracket}, got {value!r}")
    return value


def require_at_least(name: str, value: float, minimum: float) -> float:
    """Validate that ``value`` is finite and at least ``minimum``."""
    _require_finite(name, value)
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def _require_finite(name: str, value: float) -> None:
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a real number, got {value!r}") from exc
    if math.isnan(fvalue) or math.isinf(fvalue):
        raise ParameterError(f"{name} must be finite, got {value!r}")
