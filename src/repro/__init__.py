"""repro — reproduction of Maly, *Cost of Silicon Viewed from VLSI
Design Perspective* (DAC 1994).

An analytical library for IC manufacturing cost: wafer cost versus
feature size (eq. 3), dies-per-wafer geometry (eq. 4), design density
(eq. 5), functional yield with defect-size awareness (eqs. 6–7), and
their composition into cost per transistor (eqs. 1, 8, 9) — plus the
manufacturing-economics and system-level substrates the paper's
discussion rests on (product mix, test cost, MCM/KGD, partitioning).

Quick start::

    from repro import TransistorCostModel, WaferCostModel, Wafer

    model = TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=700.0,
                                  cost_growth_rate=1.8),
        wafer=Wafer(radius_cm=7.5))
    result = model.evaluate(n_transistors=3.1e6, feature_size_um=0.8,
                            design_density=150.0, yield_value=0.7)
    print(result.cost_per_transistor_microdollars)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .errors import (
    CapacityError,
    ConvergenceError,
    GeometryError,
    ParameterError,
    ReproError,
)
from .geometry import Die, Wafer, dies_per_wafer_maly
from .yieldsim import (
    BoseEinsteinYield,
    CompoundPoissonGamma,
    DefectSizeDistribution,
    FittedYieldLaw,
    HierarchicalYieldModel,
    LotResult,
    MixtureYieldModel,
    ModelSelectionReport,
    MurphyYield,
    NegativeBinomialYield,
    ParametricYield,
    PoissonYield,
    RedundantMemoryYield,
    ReferenceAreaYield,
    SeedsYield,
    SpotDefectSimulator,
    fit_yield_models,
    poisson_yield,
    scaled_poisson_yield,
)
from .core import (
    SCENARIO_1,
    SCENARIO_2,
    CostBreakdown,
    CostLandscape,
    FIG8_FAB,
    GenerationModel,
    Scenario,
    TransistorCostModel,
    WaferCostModel,
    evaluate_catalog,
    evaluate_product,
    optimal_feature_size,
    optimal_feature_size_for_die_area,
)
from .technology import (
    PRODUCT_CATALOG,
    ProductClass,
    ProductSpec,
    TechnologyRoadmap,
)
from .batch import (
    BatchCache,
    BatchCostResult,
    cross_validate_model_suite,
    cross_validate_yield_batch,
    default_cache,
    dies_per_wafer_batch,
    evaluate_batch,
    scaled_poisson_yield_batch,
    transistor_cost_batch,
    wafer_cost_batch,
)
from . import obs
from .obs import get_trace, metrics, span
from . import serve
from .serve import (
    AsyncCostService,
    CostService,
    CostTicket,
    FabCostQuery,
    MicroBatchScheduler,
    ModelCostQuery,
    ServedCost,
    TuningProfile,
)
from . import replay
from .replay import learn_profile, replay_log

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ParameterError",
    "GeometryError",
    "ConvergenceError",
    "CapacityError",
    "Die",
    "Wafer",
    "dies_per_wafer_maly",
    "PoissonYield",
    "MurphyYield",
    "SeedsYield",
    "BoseEinsteinYield",
    "NegativeBinomialYield",
    "CompoundPoissonGamma",
    "HierarchicalYieldModel",
    "MixtureYieldModel",
    "ReferenceAreaYield",
    "RedundantMemoryYield",
    "ParametricYield",
    "SpotDefectSimulator",
    "LotResult",
    "DefectSizeDistribution",
    "poisson_yield",
    "scaled_poisson_yield",
    "fit_yield_models",
    "FittedYieldLaw",
    "ModelSelectionReport",
    "GenerationModel",
    "WaferCostModel",
    "TransistorCostModel",
    "CostBreakdown",
    "Scenario",
    "SCENARIO_1",
    "SCENARIO_2",
    "CostLandscape",
    "FIG8_FAB",
    "optimal_feature_size",
    "optimal_feature_size_for_die_area",
    "evaluate_product",
    "evaluate_catalog",
    "ProductClass",
    "ProductSpec",
    "PRODUCT_CATALOG",
    "TechnologyRoadmap",
    "BatchCache",
    "BatchCostResult",
    "default_cache",
    "cross_validate_yield_batch",
    "cross_validate_model_suite",
    "dies_per_wafer_batch",
    "evaluate_batch",
    "scaled_poisson_yield_batch",
    "transistor_cost_batch",
    "wafer_cost_batch",
    "obs",
    "span",
    "metrics",
    "get_trace",
    "serve",
    "AsyncCostService",
    "CostService",
    "CostTicket",
    "FabCostQuery",
    "MicroBatchScheduler",
    "ModelCostQuery",
    "ServedCost",
    "TuningProfile",
    "replay",
    "learn_profile",
    "replay_log",
    "__version__",
]
