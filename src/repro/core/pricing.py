"""Prices and margins — the market side of the cost story.

The paper's economics run on two price facts:

* **DRAM pricing follows the "Bi rule"** [11] (Tarui): price per *bit*
  falls along a fixed learning trajectory as cumulative bits shipped
  grow — so a memory maker's margin is the race between the Bi-rule
  price line and the eq.-(1) cost line.
* **Margins were lucrative and are compressing** [5]: "Increased
  competition has led to a decrease in previously lucrative profit
  margins" — which is what turns the Fig.-7 cost increase from an
  accounting footnote into an existential problem.

This module models both: a learning-curve price trajectory and a
margin calculator joining any price to the cost model's output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive


@dataclass(frozen=True)
class LearningCurvePrice:
    """Price per unit following a cumulative-volume learning curve.

    The classical form: every doubling of cumulative volume multiplies
    the price by ``learning_rate`` (the "Bi rule" fitted DRAM price per
    bit with learning_rate ≈ 0.68–0.72 over the 1970s–80s):

    .. math:: P(Q) = P_1 \\cdot Q^{\\log_2(learning\\_rate)}

    Parameters
    ----------
    first_unit_price_dollars:
        P₁ — price of the first cumulative unit.
    learning_rate:
        Price multiplier per cumulative doubling, in (0, 1).
    """

    first_unit_price_dollars: float
    learning_rate: float = 0.7

    def __post_init__(self) -> None:
        require_positive("first_unit_price_dollars",
                         self.first_unit_price_dollars)
        require_fraction("learning_rate", self.learning_rate,
                         inclusive_low=False, inclusive_high=False)

    @property
    def exponent(self) -> float:
        """The log-log slope b = log2(learning_rate) (negative)."""
        return math.log2(self.learning_rate)

    def price(self, cumulative_units: float) -> float:
        """Price at a cumulative volume (units ≥ 1)."""
        if cumulative_units < 1.0:
            raise ParameterError(
                f"cumulative_units must be >= 1, got {cumulative_units}")
        return self.first_unit_price_dollars \
            * cumulative_units ** self.exponent

    def volume_for_price(self, target_price_dollars: float) -> float:
        """Cumulative volume at which the price reaches a target."""
        require_positive("target_price_dollars", target_price_dollars)
        if target_price_dollars > self.first_unit_price_dollars:
            raise ParameterError(
                "target price exceeds the first-unit price; already below it")
        return (target_price_dollars / self.first_unit_price_dollars) \
            ** (1.0 / self.exponent)

    def doublings_to_price(self, target_price_dollars: float) -> float:
        """How many cumulative doublings until the price target."""
        volume = self.volume_for_price(target_price_dollars)
        return math.log2(volume)


@dataclass(frozen=True)
class MarginModel:
    """Join a selling price to a unit cost.

    Works at any granularity — per transistor (Table 3's unit), per
    die, per wafer — as long as price and cost share it.
    """

    unit_price_dollars: float
    unit_cost_dollars: float

    def __post_init__(self) -> None:
        require_positive("unit_price_dollars", self.unit_price_dollars)
        require_positive("unit_cost_dollars", self.unit_cost_dollars)

    @property
    def gross_margin(self) -> float:
        """(price − cost) / price; negative when under water."""
        return 1.0 - self.unit_cost_dollars / self.unit_price_dollars

    @property
    def markup(self) -> float:
        """price / cost."""
        return self.unit_price_dollars / self.unit_cost_dollars

    def price_for_margin(self, target_margin: float) -> float:
        """Price needed for a target gross margin at this cost."""
        require_fraction("target_margin", target_margin,
                         inclusive_high=False)
        return self.unit_cost_dollars / (1.0 - target_margin)

    def cost_ceiling_for_margin(self, target_margin: float) -> float:
        """Highest unit cost compatible with a target margin at this price.

        The designer-facing number: the cost budget the eq.-(1) model
        must beat for the product to clear its margin bar.
        """
        require_fraction("target_margin", target_margin,
                         inclusive_high=False)
        return self.unit_price_dollars * (1.0 - target_margin)


def margin_squeeze_year(cost_per_unit_by_year, price_by_year,
                        *, floor_margin: float = 0.2) -> float | None:
    """First year gross margin falls below ``floor_margin``.

    ``cost_per_unit_by_year`` and ``price_by_year`` are callables
    year → dollars (e.g. a :class:`~repro.core.trajectory.CostTrajectory`
    method and a Bi-rule price composed with a shipment model).  Scans
    1985–2010 in 1-year steps; None if the margin holds throughout.
    """
    require_fraction("floor_margin", floor_margin, inclusive_high=False)
    year = 1985.0
    while year <= 2010.0:
        price = price_by_year(year)
        cost = cost_per_unit_by_year(year)
        if price <= 0:
            raise ParameterError(f"price model returned {price} at {year}")
        if 1.0 - cost / price < floor_margin:
            return year
        year += 1.0
    return None
