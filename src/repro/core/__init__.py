"""The paper's primary contribution: the transistor cost model.

* :mod:`~repro.core.wafer_cost` — eqs. (2) and (3): wafer cost as a
  function of feature size, volume and overhead, with selectable
  generation-counting laws for the X exponent.
* :mod:`~repro.core.transistor_cost` — eqs. (1), (8) and (9): the full
  cost-per-transistor composition with an itemized breakdown.
* :mod:`~repro.core.scenarios` — Scenario #1 and Scenario #2 of
  Sec. IV.A, plus the sweep machinery behind Figs. 6 and 7.
* :mod:`~repro.core.optimization` — the Fig.-8 cost landscape:
  constant-cost contours in (λ, N_tr), per-die-size optimal feature
  size, and local optima detection.
* :mod:`~repro.core.diversity` — the Table-3 engine mapping
  :class:`~repro.technology.products.ProductSpec` records to costs.
* :mod:`~repro.core.sensitivity` — log-log elasticities and tornado
  analyses of the cost model (extension).
"""

from .wafer_cost import GenerationModel, WaferCostModel
from .transistor_cost import CostBreakdown, TransistorCostModel
from .scenarios import (
    Scenario,
    SCENARIO_1,
    SCENARIO_2,
    scenario1_cost_curve,
    scenario2_cost_curve,
)
from .optimization import (
    CostLandscape,
    optimal_feature_size,
    optimal_feature_size_for_die_area,
    FIG8_FAB,
)
from .diversity import CostResult, evaluate_product, evaluate_catalog
from .sensitivity import elasticity, tornado
from .trajectory import (
    CostTrajectory,
    divergence_year,
    optimistic_trajectory,
    realistic_trajectory,
)
from .pricing import LearningCurvePrice, MarginModel
from .shrink import NodeEvaluation, ShrinkAnalysis
from .uncertainty import InputDistribution, UncertaintyResult, propagate

__all__ = [
    "GenerationModel",
    "WaferCostModel",
    "CostBreakdown",
    "TransistorCostModel",
    "Scenario",
    "SCENARIO_1",
    "SCENARIO_2",
    "scenario1_cost_curve",
    "scenario2_cost_curve",
    "CostLandscape",
    "optimal_feature_size",
    "optimal_feature_size_for_die_area",
    "FIG8_FAB",
    "CostResult",
    "evaluate_product",
    "evaluate_catalog",
    "elasticity",
    "tornado",
    "CostTrajectory",
    "optimistic_trajectory",
    "realistic_trajectory",
    "divergence_year",
    "LearningCurvePrice",
    "MarginModel",
    "ShrinkAnalysis",
    "NodeEvaluation",
    "InputDistribution",
    "UncertaintyResult",
    "propagate",
]
