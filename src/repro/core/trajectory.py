"""Transistor cost over calendar time — the paper's trend claims.

Sec. I/III: "In the last twenty years silicon cost — computed per
single IC transistor — has been constantly decreasing ... Recently the
situation has changed.  There are some indications that the cost per
transistor may no longer decrease [10], or at least the rate of the
cost decrease may become slower [11]."

This module composes the :class:`~repro.technology.roadmap.
TechnologyRoadmap` (λ vs. year) with a :class:`~repro.core.scenarios.
Scenario` (C_tr vs. λ) into C_tr vs. *year*, and locates the flattening
/ reversal the paper warns about: the year at which the year-over-year
cost improvement drops below a threshold, and the year cost starts
rising outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from ..technology.roadmap import TechnologyRoadmap
from ..units import require_positive
from .scenarios import Scenario, SCENARIO_1, SCENARIO_2


@dataclass(frozen=True)
class CostTrajectory:
    """C_tr as a function of calendar year under one scenario.

    Parameters
    ----------
    scenario:
        Cost-vs-λ assumptions (Scenario #1/#2 or custom).
    growth_rate:
        The X value to use from the scenario's sweep.
    roadmap:
        λ-vs-year trend (Fig. 1).
    """

    scenario: Scenario
    growth_rate: float
    roadmap: TechnologyRoadmap = field(default_factory=TechnologyRoadmap)

    def __post_init__(self) -> None:
        if self.growth_rate < 1.0:
            raise ParameterError(
                f"growth_rate must be >= 1, got {self.growth_rate}")

    def cost_at_year(self, year: float) -> float:
        """C_tr (dollars) for the leading-edge node of the given year."""
        lam = self.roadmap.feature_size_um(year)
        return self.scenario.cost_dollars(lam, self.growth_rate)

    def series(self, year_lo: float, year_hi: float,
               n_points: int = 61) -> tuple[np.ndarray, np.ndarray]:
        """(years, C_tr in dollars) arrays over a span."""
        if not year_lo < year_hi:
            raise ParameterError("year_lo must be < year_hi")
        if n_points < 2:
            raise ParameterError("need at least 2 points")
        years = np.linspace(year_lo, year_hi, n_points)
        costs = np.array([self.cost_at_year(y) for y in years])
        return years, costs

    def annual_improvement(self, year: float) -> float:
        """Fractional year-over-year cost reduction at a year.

        Positive = cost still falling; negative = cost rising.  The
        historical norm this trend rode was ~20–30%/year.
        """
        now = self.cost_at_year(year)
        next_year = self.cost_at_year(year + 1.0)
        return 1.0 - next_year / now

    def flattening_year(self, year_lo: float = 1980.0,
                        year_hi: float = 2010.0,
                        threshold: float = 0.05) -> float | None:
        """First year the annual improvement drops below ``threshold``.

        None if the improvement stays above the threshold for the whole
        span (Scenario-#1-like trajectories).
        """
        require_positive("threshold", threshold)
        year = year_lo
        while year <= year_hi:
            if self.annual_improvement(year) < threshold:
                return year
            year += 1.0
        return None

    def reversal_year(self, year_lo: float = 1980.0,
                      year_hi: float = 2010.0) -> float | None:
        """First year cost per transistor rises outright, or None."""
        year = year_lo
        while year <= year_hi:
            if self.annual_improvement(year) < 0.0:
                return year
            year += 1.0
        return None


def optimistic_trajectory(growth_rate: float = 1.2) -> CostTrajectory:
    """Scenario #1 over time: the industry's working assumption."""
    return CostTrajectory(scenario=SCENARIO_1, growth_rate=growth_rate)


def realistic_trajectory(growth_rate: float = 1.8) -> CostTrajectory:
    """Scenario #2 over time: the paper's warning made temporal."""
    return CostTrajectory(scenario=SCENARIO_2, growth_rate=growth_rate)


def divergence_year(optimistic: CostTrajectory | None = None,
                    realistic: CostTrajectory | None = None,
                    *, ratio: float = 4.0,
                    year_lo: float = 1985.0, year_hi: float = 2010.0,
                    ) -> float | None:
    """Year the realistic/optimistic cost ratio first exceeds ``ratio``.

    A temporal restatement of the Fig.-6/Fig.-7 gap: when does planning
    on memory economics start misleading non-memory products by more
    than ``ratio``×?
    """
    require_positive("ratio", ratio)
    opt = optimistic if optimistic is not None else optimistic_trajectory()
    real = realistic if realistic is not None else realistic_trajectory()
    year = year_lo
    while year <= year_hi:
        if real.cost_at_year(year) / opt.cost_at_year(year) > ratio:
            return year
        year += 1.0
    return None
