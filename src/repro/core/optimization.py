"""The Fig.-8 cost landscape and transistor cost optimization.

Sec. IV.B evaluates the full model — eqs. (1), (3), (4) and (7) — over
the (λ, N_tr) plane for a real fab's fitted parameters (X = 1.4,
C₀ = $500, R_w = 7.5 cm, d_d = 152, D = 1.72, p = 4.07) and finds:

* constant-cost contours with multiple local optima,
* a different cost-minimizing λ for each die size, and
* that the optimum "may not call for the smallest possible (and
  expensive) feature size" — the paper's design-side takeaway.

:class:`CostLandscape` computes the grid; helpers extract contours,
per-N_tr optima, per-die-area optima, and local minima.

Million-point landscapes run through the tiled sweep engine
(:mod:`repro.batch.sweep`): ``CostLandscape.grid(workers=...)`` and
the batch optimizers :func:`optimal_feature_sizes` /
:func:`optimal_feature_size_for_die_areas` accept
``workers``/``backend``/``tile_size``/``checkpoint_dir`` knobs and
stay bitwise identical to the sequential paths (the sweep parity
contract).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..batch.engine import BatchCostResult, transistor_cost_batch
from ..errors import ConvergenceError, ParameterError
from ..geometry import Die, Wafer, dies_per_wafer_maly
from ..obs import metrics as _metrics, span as _span
from ..units import require_positive
from ..yieldsim.models import scaled_poisson_yield
from .wafer_cost import WaferCostModel


@dataclass(frozen=True)
class FabCharacterization:
    """The fitted fab parameters behind Fig. 8 (from [26])."""

    cost_growth_rate: float = 1.4
    reference_cost_dollars: float = 500.0
    wafer_radius_cm: float = 7.5
    design_density: float = 152.0
    defect_coefficient: float = 1.72
    size_exponent_p: float = 4.07

    def __post_init__(self) -> None:
        require_positive("cost_growth_rate", self.cost_growth_rate)
        require_positive("reference_cost_dollars", self.reference_cost_dollars)
        require_positive("wafer_radius_cm", self.wafer_radius_cm)
        require_positive("design_density", self.design_density)
        require_positive("defect_coefficient", self.defect_coefficient)
        require_positive("size_exponent_p", self.size_exponent_p)


#: The exact parameter set quoted for Fig. 8.
FIG8_FAB = FabCharacterization()


def transistor_cost_full(n_transistors: float, feature_size_um: float,
                         fab: FabCharacterization = FIG8_FAB) -> float:
    """One evaluation of eqs. (1)+(3)+(4)+(7), in dollars per transistor.

    Returns ``math.inf`` when the implied die does not fit the wafer —
    the landscape code treats that as an infeasible (masked) cell
    rather than an error so grids can span aggressive N_tr ranges.
    """
    require_positive("n_transistors", n_transistors)
    require_positive("feature_size_um", feature_size_um)
    wafer_cost = WaferCostModel(
        reference_cost_dollars=fab.reference_cost_dollars,
        cost_growth_rate=fab.cost_growth_rate)
    wafer = Wafer(radius_cm=fab.wafer_radius_cm)
    die = Die.from_transistor_count(n_transistors, fab.design_density,
                                    feature_size_um)
    n_ch = dies_per_wafer_maly(wafer, die)
    if n_ch < 1:
        return math.inf
    y = scaled_poisson_yield(n_transistors, fab.design_density,
                             fab.defect_coefficient, feature_size_um,
                             fab.size_exponent_p)
    c_w = wafer_cost.pure_cost(feature_size_um)
    if y < 1e-250:
        return math.inf  # yield underflow: economically infeasible cell
    return c_w / (n_ch * n_transistors * y)


@dataclass
class CostLandscape:
    """C_tr over a (λ, N_tr) grid — the data behind Fig. 8.

    ``feature_sizes_um`` spans the x-axis, ``transistor_counts`` the
    y-axis; ``grid()`` evaluates lazily and caches.  Infeasible cells
    (die larger than wafer, or yield underflow) hold ``inf``.
    """

    fab: FabCharacterization = field(default_factory=FabCharacterization)
    feature_sizes_um: np.ndarray = field(
        default_factory=lambda: np.linspace(0.3, 2.0, 46))
    transistor_counts: np.ndarray = field(
        default_factory=lambda: np.geomspace(1e5, 1e7, 47))
    _result: BatchCostResult | None = field(default=None, repr=False)

    def breakdown(self) -> BatchCostResult:
        """The full batched evaluation: costs plus every intermediate.

        One :func:`repro.batch.transistor_cost_batch` call over the
        whole plane; cached for the landscape's lifetime.
        """
        if self._result is None:
            counts = np.asarray(self.transistor_counts, dtype=float)
            lams = np.asarray(self.feature_sizes_um, dtype=float)
            with _span("core.landscape.grid",
                       shape=(counts.size, lams.size)):
                self._result = transistor_cost_batch(
                    counts[:, None], lams[None, :], self.fab)
            _metrics.inc("core.landscape.grids")
        return self._result

    def grid(self, *, workers: int | None = None, backend: str = "auto",
             tile_size: int | None = None,
             checkpoint_dir=None, resume: bool = False) -> np.ndarray:
        """Cost array of shape (len(transistor_counts), len(feature_sizes)).

        The default call evaluates (and caches) the whole plane in one
        batched pass.  With ``workers``/``checkpoint_dir`` the plane
        runs through :class:`repro.batch.sweep.TiledSweepRunner`
        instead — tiled, optionally on the shared-memory process pool,
        optionally checkpointed — and the array is bitwise identical
        to the default path (the sweep parity contract).
        """
        if workers is None and checkpoint_dir is None:
            return self.breakdown().cost_per_transistor_dollars
        from ..batch.sweep import (
            DEFAULT_TILE_SIZE, FabCostSweep, TiledSweepRunner)
        counts = np.asarray(self.transistor_counts, dtype=float)
        lams = np.asarray(self.feature_sizes_um, dtype=float)
        with TiledSweepRunner(
                backend=backend, workers=workers,
                tile_size=DEFAULT_TILE_SIZE if tile_size is None
                else tile_size,
                checkpoint_dir=checkpoint_dir, resume=resume) as runner:
            return runner.run(FabCostSweep(self.fab), counts, lams).values

    def optimal_lambda_per_count(self) -> list[tuple[float, float, float]]:
        """For each N_tr row: (N_tr, λ_opt, C_tr at optimum).

        Rows with no feasible cell are skipped.
        """
        g = self.grid()
        rows = []
        for i, n_tr in enumerate(self.transistor_counts):
            row = g[i]
            finite = np.isfinite(row)
            if not finite.any():
                continue
            j = int(np.argmin(np.where(finite, row, np.inf)))
            rows.append((float(n_tr), float(self.feature_sizes_um[j]),
                         float(row[j])))
        return rows

    def local_minima(self) -> list[tuple[int, int]]:
        """Grid indices (i, j) that are strict local minima in 4-neighborhood.

        The paper observes "a number of local optima" on its contour
        plot; this extracts them from the discretized landscape.
        """
        g = self.grid()
        minima = []
        for i in range(g.shape[0]):
            for j in range(g.shape[1]):
                v = g[i, j]
                if not np.isfinite(v):
                    continue
                neighbors = []
                if i > 0:
                    neighbors.append(g[i - 1, j])
                if i < g.shape[0] - 1:
                    neighbors.append(g[i + 1, j])
                if j > 0:
                    neighbors.append(g[i, j - 1])
                if j < g.shape[1] - 1:
                    neighbors.append(g[i, j + 1])
                if all(v < n for n in neighbors):
                    minima.append((i, j))
        return minima

    def contour_levels(self, n_levels: int = 8, *,
                       max_decades: float = 3.0) -> np.ndarray:
        """Log-spaced cost levels covering the economically relevant range.

        The raw landscape spans absurd magnitudes (cells with Y ~ 1e-100
        are technically finite); contours are drawn from the valley floor
        up to ``max_decades`` decades above it, which is where Fig. 8's
        structure lives.
        """
        require_positive("max_decades", max_decades)
        g = self.grid()
        finite = g[np.isfinite(g)]
        if finite.size == 0:
            raise ParameterError("landscape has no feasible cells")
        lo = float(finite.min())
        hi = min(float(finite.max()), lo * 10.0 ** max_decades)
        return np.geomspace(lo, hi, n_levels)

    def contour_mask(self, level: float, tolerance: float = 0.05) -> np.ndarray:
        """Boolean grid of cells within ±tolerance (relative) of a level.

        A discretized stand-in for the contour lines of Fig. 8, suitable
        for the ASCII rendering in :mod:`repro.analysis.report`.
        """
        require_positive("level", level)
        g = self.grid()
        with np.errstate(invalid="ignore"):
            rel = np.abs(g - level) / level
        return np.isfinite(g) & (rel <= tolerance)


#: Coarse-scan resolutions shared by the scalar optimizers and their
#: batched counterparts — the sweeps must scan the *same* λ grid for
#: the per-row argmins to agree with the scalar code bit-for-bit.
_OPT_SCAN_POINTS = 61
_DIE_AREA_SCAN_POINTS = 241


def _golden_refine(f, lams: np.ndarray, k: int, tol_um: float) -> float:
    # Golden-section refinement of coarse-scan minimum k, identical
    # for the scalar optimizer and the batched sweep (both call this
    # with the same bracket and the same scalar objective, so they
    # converge to the same bits).
    lo = lams[max(k - 1, 0)]
    hi = lams[min(k + 1, len(lams) - 1)]
    phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = f(c), f(d)
    while b - a > tol_um:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = f(d)
    return 0.5 * (a + b)


def optimal_feature_size(n_transistors: float,
                         fab: FabCharacterization = FIG8_FAB,
                         lam_lo_um: float = 0.25, lam_hi_um: float = 1.5,
                         tol_um: float = 1e-4) -> float:
    """Cost-minimizing λ for a fixed transistor count (golden-section search).

    The objective is unimodal-enough in practice for this fab (the
    wafer-cost term rises and the yield/area terms fall monotonically in
    λ); the search is bracketed and the result refined against a coarse
    scan to avoid landing in a secondary valley.
    """
    require_positive("n_transistors", n_transistors)
    if not lam_lo_um < lam_hi_um:
        raise ParameterError("lam_lo_um must be < lam_hi_um")

    def f(lam: float) -> float:
        return transistor_cost_full(n_transistors, lam, fab)

    with _span("core.optimal_feature_size", n_transistors=n_transistors):
        # Coarse scan (batched) to pick the best bracket among possible
        # multiple valleys; the golden-section refinement stays scalar.
        lams = np.linspace(lam_lo_um, lam_hi_um, _OPT_SCAN_POINTS)
        costs = transistor_cost_batch(n_transistors, lams,
                                      fab).cost_per_transistor_dollars
        if not np.isfinite(costs).any():
            raise ConvergenceError(
                "no feasible feature size in the given range")
        k = int(np.argmin(np.where(np.isfinite(costs), costs, np.inf)))
        result = _golden_refine(f, lams, k, tol_um)
    _metrics.inc("core.optimize.calls")
    return result


def optimal_feature_sizes(n_transistors,
                          fab: FabCharacterization = FIG8_FAB,
                          lam_lo_um: float = 0.25, lam_hi_um: float = 1.5,
                          tol_um: float = 1e-4, *,
                          workers: int | None = None,
                          backend: str = "auto",
                          tile_size: int | None = None) -> np.ndarray:
    """Cost-minimizing λ for each of an array of transistor counts.

    The batch form of :func:`optimal_feature_size`: the coarse scans
    for all counts run as *one* tiled sweep (optionally on the
    shared-memory pool via ``workers``), then each count's bracket is
    refined with the same scalar golden section — so every element
    equals the scalar function's answer for that count.
    """
    from ..batch.sweep import (
        DEFAULT_TILE_SIZE, FabCostSweep, TiledSweepRunner)
    counts = np.ascontiguousarray(n_transistors, dtype=float).ravel()
    if counts.size < 1:
        raise ParameterError("n_transistors must be non-empty")
    if bool((counts <= 0).any()):
        raise ParameterError("n_transistors must be > 0 for every element")
    if not lam_lo_um < lam_hi_um:
        raise ParameterError("lam_lo_um must be < lam_hi_um")

    lams = np.linspace(lam_lo_um, lam_hi_um, _OPT_SCAN_POINTS)
    out = np.empty(counts.size, dtype=np.float64)
    with _span("core.optimal_feature_sizes", count=int(counts.size)):
        with TiledSweepRunner(
                backend=backend, workers=workers,
                tile_size=DEFAULT_TILE_SIZE if tile_size is None
                else tile_size) as runner:
            costs = runner.run(FabCostSweep(fab), counts, lams).values
        for i, n in enumerate(counts.tolist()):
            row = costs[i]
            if not np.isfinite(row).any():
                raise ConvergenceError(
                    f"no feasible feature size in the given range for "
                    f"N_tr={n}")
            k = int(np.argmin(np.where(np.isfinite(row), row, np.inf)))
            out[i] = _golden_refine(
                lambda lam: transistor_cost_full(n, lam, fab),
                lams, k, tol_um)
    _metrics.inc("core.optimize.calls", int(counts.size))
    return out


def optimal_feature_size_for_die_area(die_area_cm2: float,
                                      fab: FabCharacterization = FIG8_FAB,
                                      lam_lo_um: float = 0.25,
                                      lam_hi_um: float = 1.5) -> tuple[float, float]:
    """Cost-minimizing λ when the *die size* is fixed (λ sets N_tr via eq. 5).

    Returns ``(λ_opt, C_tr at optimum)``.  This is the paper's framing:
    "for each die size there is different λ_opt which minimizes the cost
    per transistor."
    """
    require_positive("die_area_cm2", die_area_cm2)

    lams = np.linspace(lam_lo_um, lam_hi_um, _DIE_AREA_SCAN_POINTS)
    n_tr = die_area_cm2 * 1.0e8 / (fab.design_density * lams * lams)
    costs = transistor_cost_batch(n_tr, lams,
                                  fab).cost_per_transistor_dollars
    if not np.isfinite(costs).any():
        raise ConvergenceError("no feasible feature size for this die area")
    k = int(np.argmin(np.where(np.isfinite(costs), costs, np.inf)))
    return float(lams[k]), float(costs[k])


def optimal_feature_size_for_die_areas(
        die_areas_cm2,
        fab: FabCharacterization = FIG8_FAB,
        lam_lo_um: float = 0.25, lam_hi_um: float = 1.5, *,
        workers: int | None = None,
        backend: str = "auto",
        tile_size: int | None = None,
        checkpoint_dir=None,
        resume: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """``(λ_opt, C_tr at optimum)`` arrays for an array of die areas.

    The batch form of :func:`optimal_feature_size_for_die_area`: all
    areas scan the same λ grid in one tiled sweep (optionally on the
    shared-memory pool, optionally checkpointed), and each element
    matches the scalar function's answer for that area — the sweep
    kernel replicates the scalar eq.-(5) operation order exactly.
    """
    from ..batch.sweep import (
        DEFAULT_TILE_SIZE, DieAreaCostSweep, TiledSweepRunner)
    areas = np.ascontiguousarray(die_areas_cm2, dtype=float).ravel()
    if areas.size < 1:
        raise ParameterError("die_areas_cm2 must be non-empty")
    if bool((areas <= 0).any()):
        raise ParameterError("die_areas_cm2 must be > 0 for every element")

    lams = np.linspace(lam_lo_um, lam_hi_um, _DIE_AREA_SCAN_POINTS)
    lam_opt = np.empty(areas.size, dtype=np.float64)
    cost_opt = np.empty(areas.size, dtype=np.float64)
    with _span("core.optimal_feature_size_for_die_areas",
               count=int(areas.size)):
        with TiledSweepRunner(
                backend=backend, workers=workers,
                tile_size=DEFAULT_TILE_SIZE if tile_size is None
                else tile_size,
                checkpoint_dir=checkpoint_dir, resume=resume) as runner:
            costs = runner.run(DieAreaCostSweep(fab), areas, lams).values
        for i in range(areas.size):
            row = costs[i]
            finite = np.isfinite(row)
            if not finite.any():
                raise ConvergenceError(
                    f"no feasible feature size for die area "
                    f"{areas[i]} cm^2")
            k = int(np.argmin(np.where(finite, row, np.inf)))
            lam_opt[i] = lams[k]
            cost_opt[i] = row[k]
    _metrics.inc("core.optimize.calls", int(areas.size))
    return lam_opt, cost_opt
