"""Monte Carlo uncertainty propagation through the cost model.

The paper's inputs are uncertain by its own account — X is quoted
anywhere from 1.2 to 2.4, Y₀ depends on fab maturity, d_d on design
style.  A point estimate of C_tr hides that.  This module propagates
input distributions through any cost function and reports the output
distribution: mean, spread, percentiles, and the probability of
exceeding a budget — turning Table-3-style point rows into risk
statements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import ParameterError
from ..units import require_positive

CostFunction = Callable[..., float]


@dataclass(frozen=True)
class InputDistribution:
    """One uncertain input: uniform or triangular on [low, high].

    ``mode`` switches to a triangular distribution peaked there;
    ``None`` keeps it uniform.  Log-domain sampling (``log_domain``)
    suits multiplicative parameters like X.
    """

    low: float
    high: float
    mode: float | None = None
    log_domain: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ParameterError(
                f"need low < high, got [{self.low}, {self.high}]")
        if self.mode is not None and not self.low <= self.mode <= self.high:
            raise ParameterError(
                f"mode {self.mode} outside [{self.low}, {self.high}]")
        if self.log_domain and self.low <= 0.0:
            raise ParameterError("log_domain requires positive bounds")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` samples."""
        if n < 1:
            raise ParameterError(f"n must be >= 1, got {n}")
        lo, hi = self.low, self.high
        mode = self.mode
        if self.log_domain:
            lo, hi = math.log(lo), math.log(hi)
            mode = math.log(mode) if mode is not None else None
        if mode is None:
            out = rng.uniform(lo, hi, size=n)
        else:
            out = rng.triangular(lo, mode, hi, size=n)
        return np.exp(out) if self.log_domain else out


@dataclass(frozen=True)
class UncertaintyResult:
    """Output distribution summary of a propagation run."""

    samples: np.ndarray

    @property
    def mean(self) -> float:
        """Sample mean of the cost."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(self.samples.std(ddof=1))

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ParameterError(f"q must be in [0, 100], got {q}")
        return float(np.percentile(self.samples, q))

    @property
    def p10_p90_ratio(self) -> float:
        """Spread measure: 90th over 10th percentile."""
        p10 = self.percentile(10.0)
        if p10 <= 0.0:
            raise ParameterError("10th percentile non-positive")
        return self.percentile(90.0) / p10

    def probability_above(self, threshold: float) -> float:
        """P(cost > threshold) — the budget-risk number."""
        return float(np.mean(self.samples > threshold))


def propagate(cost_fn: CostFunction,
              fixed: Mapping[str, float],
              uncertain: Mapping[str, InputDistribution],
              *, n_samples: int = 2000,
              rng: np.random.Generator | None = None) -> UncertaintyResult:
    """Monte Carlo propagation of input uncertainty through ``cost_fn``.

    ``fixed`` holds point-valued keyword arguments; ``uncertain`` maps
    argument names to distributions (inputs sampled independently).
    Non-finite cost evaluations (infeasible corners) are dropped with a
    :class:`ParameterError` if they exceed half the draw — a model
    whose uncertain range is mostly infeasible needs narrower inputs,
    not silent truncation.
    """
    if not uncertain:
        raise ParameterError("uncertain must name at least one input")
    require_positive("n_samples", n_samples)
    generator = rng if rng is not None else np.random.default_rng()
    draws = {name: dist.sample(n_samples, generator)
             for name, dist in uncertain.items()}
    values = []
    for i in range(n_samples):
        kwargs = dict(fixed)
        kwargs.update({name: float(draw[i]) for name, draw in draws.items()})
        try:
            value = cost_fn(**kwargs)
        except ParameterError:
            value = math.inf
        values.append(value)
    arr = np.asarray(values, dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size < n_samples / 2:
        raise ParameterError(
            f"{n_samples - finite.size} of {n_samples} samples infeasible; "
            "tighten the input distributions")
    return UncertaintyResult(samples=finite)
