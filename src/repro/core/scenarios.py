"""Manufacturing scenarios — Sec. IV.A of the paper, Figs. 6 and 7.

Scenario #1 (the industry's optimistic premise circa 1994):

* S1.1 — X between 1.1 and 1.3;
* S1.2 — product is a 1 Mb DRAM with redundancy (d_d ≈ 30);
* S1.3 — mature yield is 100%;
* S1.4 — high-volume, zero-overhead operation (C_over = 0).

Under these, eq. (8) makes C_tr fall as λ shrinks (Fig. 6).

Scenario #2 (the realistic counterpoint):

* S2.1 — X between 1.8 and 2.4;
* S2.2 — product is a custom µP whose die grows along the Fig.-3 trend
  ``A_ch(λ) = 16.5·exp(−5.3λ)`` (d_d ≈ 200);
* S2.3 — yield is 70% for a 1 cm² die at every generation;
* S2.4 — as S1.4.

Under these, eq. (9) makes C_tr *rise* as λ shrinks (Fig. 7) — the
paper's central warning.

:class:`Scenario` generalizes both so users can build their own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from ..batch.engine import scenario1_cost_batch, scenario2_cost_batch
from ..errors import ParameterError
from ..geometry import Wafer
from ..technology.roadmap import die_area_trend_cm2
from ..units import require_fraction, require_positive
from .transistor_cost import TransistorCostModel
from .wafer_cost import GenerationModel, WaferCostModel


@dataclass(frozen=True)
class Scenario:
    """A named manufacturing scenario for C_tr-vs-λ studies.

    Parameters
    ----------
    name:
        Human-readable label.
    growth_rates:
        The X values to sweep (one cost curve per X).
    design_density:
        d_d in λ² per transistor (30 for the Scenario-#1 DRAM, 200 for
        the Scenario-#2 µP).
    reference_cost_dollars:
        C₀ for the eq.-(3) wafer cost.
    wafer_radius_cm:
        R_w (7.5 cm in both paper scenarios).
    reference_yield, reference_area_cm2:
        The Y₀^(A/A₀) law for Scenario-#2-style runs; ``reference_yield
        = 1.0`` recovers Scenario #1's perfect-yield assumption (the
        die-area function is then irrelevant to cost).
    die_area_cm2_fn:
        λ → die area (cm²) used by the yield term; defaults to the
        Fig.-3 trend.
    generation_model:
        Law for the eq.-(3) exponent (see
        :class:`~repro.core.wafer_cost.GenerationModel`).
    """

    name: str
    growth_rates: tuple[float, ...]
    design_density: float
    reference_cost_dollars: float = 500.0
    wafer_radius_cm: float = 7.5
    reference_yield: float = 1.0
    reference_area_cm2: float = 1.0
    die_area_cm2_fn: Callable[[float], float] = die_area_trend_cm2
    generation_model: GenerationModel = GenerationModel.SHRINK_LOG

    def __post_init__(self) -> None:
        if not self.growth_rates:
            raise ParameterError("growth_rates must be non-empty")
        for x in self.growth_rates:
            if x < 1.0:
                raise ParameterError(f"growth rate X must be >= 1, got {x}")
        require_positive("design_density", self.design_density)
        require_positive("reference_cost_dollars", self.reference_cost_dollars)
        require_positive("wafer_radius_cm", self.wafer_radius_cm)
        require_fraction("reference_yield", self.reference_yield,
                         inclusive_low=False)
        require_positive("reference_area_cm2", self.reference_area_cm2)

    def model_for(self, growth_rate: float) -> TransistorCostModel:
        """The composed cost model for one X value."""
        wafer_cost = WaferCostModel(
            reference_cost_dollars=self.reference_cost_dollars,
            cost_growth_rate=growth_rate,
            generation_model=self.generation_model)
        return TransistorCostModel(wafer_cost=wafer_cost,
                                   wafer=Wafer(radius_cm=self.wafer_radius_cm))

    def cost_dollars(self, feature_size_um: float, growth_rate: float) -> float:
        """C_tr at one (λ, X) point, in dollars.

        Uses eq. (8) when the scenario assumes perfect yield, eq. (9)
        otherwise — exactly the forms the paper plots.
        """
        model = self.model_for(growth_rate)
        if self.reference_yield >= 1.0:
            return model.scenario1_cost(feature_size_um, self.design_density)
        return model.scenario2_cost(
            feature_size_um, self.design_density,
            reference_yield=self.reference_yield,
            reference_area_cm2=self.reference_area_cm2,
            die_area_cm2=self.die_area_cm2_fn(feature_size_um))

    def curves(self, feature_sizes_um: Sequence[float], *,
               workers: int | None = None, backend: str = "auto",
               tile_size: int | None = None) -> dict[float, np.ndarray]:
        """One C_tr(λ) array (dollars) per configured X.

        Runs on :mod:`repro.batch` — one vectorized eq.-(8)/(9) sweep
        per X; :meth:`cost_dollars` is the scalar reference.  With
        ``workers`` the whole (X, λ) bundle runs as one tiled sweep
        through :class:`repro.batch.sweep.TiledSweepRunner` (bitwise
        identical to the per-X arrays — the sweep parity contract).
        """
        lams = np.asarray(list(feature_sizes_um), dtype=float)
        for lam in lams:
            require_positive("feature_size_um", float(lam))
        if workers is None:
            return {x: self._curve(lams, x) for x in self.growth_rates}
        from ..batch.sweep import (
            DEFAULT_TILE_SIZE, ScenarioSweep, TiledSweepRunner)
        rates = np.asarray(self.growth_rates, dtype=float)
        with TiledSweepRunner(
                backend=backend, workers=workers,
                tile_size=DEFAULT_TILE_SIZE if tile_size is None
                else tile_size) as runner:
            result = runner.run(ScenarioSweep(self), rates, lams)
        return {x: result.values[i].copy()
                for i, x in enumerate(self.growth_rates)}

    def _curve(self, lams: np.ndarray, growth_rate: float) -> np.ndarray:
        model = self.model_for(growth_rate)
        if self.reference_yield >= 1.0:
            return scenario1_cost_batch(model, lams, self.design_density)
        areas = np.array([self.die_area_cm2_fn(float(l)) for l in lams],
                         dtype=float)
        return scenario2_cost_batch(
            model, lams, self.design_density,
            reference_yield=self.reference_yield,
            reference_area_cm2=self.reference_area_cm2,
            die_area_cm2=areas)

    def with_growth_rates(self, growth_rates: Sequence[float]) -> "Scenario":
        """Copy of the scenario with different X values."""
        return replace(self, growth_rates=tuple(growth_rates))

    def crossover_feature_size(self, growth_rate: float,
                               lam_lo_um: float = 0.2,
                               lam_hi_um: float = 1.0,
                               n_points: int = 201) -> float | None:
        """The λ minimizing C_tr on [lam_lo, lam_hi], or None at the boundary.

        For Scenario-#2-like settings there is an interior cost-optimal
        feature size — shrinking past it *raises* cost.  Returns None
        when the minimum sits on either end of the sweep (monotone case,
        e.g. Scenario #1).
        """
        lams = np.linspace(lam_lo_um, lam_hi_um, n_points)
        costs = self._curve(lams, growth_rate)
        idx = int(np.argmin(costs))
        if idx in (0, len(lams) - 1):
            return None
        return float(lams[idx])


#: Scenario #1 — Fig. 6: 1 Mb DRAM, redundancy, perfect mature yield.
SCENARIO_1 = Scenario(
    name="Scenario #1 (commodity DRAM, optimistic)",
    growth_rates=(1.1, 1.2, 1.3),
    design_density=30.0,
    reference_cost_dollars=500.0,
    wafer_radius_cm=7.5,
    reference_yield=1.0)

#: Scenario #2 — Fig. 7: custom µP, growing die, 70% yield at 1 cm².
SCENARIO_2 = Scenario(
    name="Scenario #2 (custom uP, realistic)",
    growth_rates=(1.8, 2.1, 2.4),
    design_density=200.0,
    reference_cost_dollars=500.0,
    wafer_radius_cm=7.5,
    reference_yield=0.7,
    reference_area_cm2=1.0)


def scenario1_cost_curve(feature_sizes_um: Sequence[float],
                         growth_rate: float = 1.2) -> np.ndarray:
    """Fig.-6 convenience: one eq.-(8) cost curve, dollars per transistor."""
    lams = np.asarray(list(feature_sizes_um), dtype=float)
    for lam in lams:
        require_positive("feature_size_um", float(lam))
    return SCENARIO_1._curve(lams, growth_rate)


def scenario2_cost_curve(feature_sizes_um: Sequence[float],
                         growth_rate: float = 1.8) -> np.ndarray:
    """Fig.-7 convenience: one eq.-(9) cost curve, dollars per transistor."""
    lams = np.asarray(list(feature_sizes_um), dtype=float)
    for lam in lams:
        require_positive("feature_size_um", float(lam))
    return SCENARIO_2._curve(lams, growth_rate)
