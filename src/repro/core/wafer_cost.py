"""Wafer cost model — eqs. (2) and (3) of the paper.

Eq. (3) models the "pure" manufacturing cost of a wafer as a function
of minimum feature size:

.. math:: C'_w(\\lambda) = C_0 \\cdot X^{g(\\lambda)}

where ``C_0`` is the cost of the reference wafer (the paper uses a
6-inch, 1 µm CMOS wafer, $500–800), ``X`` is the cost growth rate *per
technology generation* (Intel 1.6, Mitsubishi 1.6–2.4, Hitachi 1.5–2.0,
the [12] study 1.79, Fig. 2 extraction 1.2–1.4), and ``g(λ)`` counts
the technology generations between λ and the reference.

The supplied paper text prints the exponent as ``0.5(1−λ)``, which is
OCR-garbled — it cannot reproduce the paper's own Fig. 7 or Table 3
(see DESIGN.md, deviation 1).  Four generation-counting laws are
provided; ``GenerationModel.SHRINK_LOG`` (generations of 0.7× linear
shrink, the canonical definition) is the default and was selected by
calibration against all 17 Table-3 rows.

Eq. (2) adds the volume dependence:

.. math:: C_w(V) = C'_w + C_{over} / V

with ``C_over`` the fixed/overhead cost and V the manufacturing volume
(wafers over the amortization window).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ParameterError
from ..units import require_at_least, require_nonnegative, require_positive


class GenerationModel(enum.Enum):
    """Laws for counting technology generations g(λ) from the reference λ₀.

    ``SHRINK_LOG``
        ``g = ln(λ₀/λ) / ln(1/s)`` with shrink factor s = 0.7 per
        generation — the canonical industry definition.  Default;
        calibrates best against Table 3 (mean |log error| 0.24).
    ``LINEAR``
        ``g = (λ₀ − λ) / 0.15`` — generations of the era were roughly
        0.15 µm apart linearly (1.0, 0.8, 0.65, 0.5, 0.35).
    ``INVERSE``
        ``g = 2(λ₀/λ − 1)`` — accelerating generation count; captures
        the paper's caveat that X may effectively grow as contamination
        control hits its limits.
    ``PRINTED``
        ``g = 0.5(1 − λ/λ₀)`` — the exponent exactly as printed in the
        supplied text.  Kept for comparison; demonstrably inconsistent
        with the paper's own results (see ``bench_ablations``).
    """

    SHRINK_LOG = "shrink-log"
    LINEAR = "linear"
    INVERSE = "inverse"
    PRINTED = "printed"

    def generations(self, feature_size_um: float, reference_um: float = 1.0,
                    *, shrink: float = 0.7,
                    linear_step_um: float = 0.15) -> float:
        """Evaluate g(λ); negative for λ coarser than the reference."""
        require_positive("feature_size_um", feature_size_um)
        require_positive("reference_um", reference_um)
        ratio = reference_um / feature_size_um
        if self is GenerationModel.SHRINK_LOG:
            if not 0.0 < shrink < 1.0:
                raise ParameterError(f"shrink must be in (0, 1), got {shrink}")
            return math.log(ratio) / math.log(1.0 / shrink)
        if self is GenerationModel.LINEAR:
            require_positive("linear_step_um", linear_step_um)
            return (reference_um - feature_size_um) / linear_step_um
        if self is GenerationModel.INVERSE:
            return 2.0 * (ratio - 1.0)
        if self is GenerationModel.PRINTED:
            return 0.5 * (1.0 - feature_size_um / reference_um)
        raise ParameterError(f"unknown generation model {self!r}")


@dataclass(frozen=True)
class WaferCostModel:
    """Eqs. (2) + (3): wafer cost versus feature size, volume, overhead.

    Parameters
    ----------
    reference_cost_dollars:
        C₀ — cost of the reference wafer.  The paper anchors $500–800
        for a 6-inch 1 µm CMOS wafer [12, 13] and $1300 for 0.8 µm with
        3 metal layers [14].
    cost_growth_rate:
        X — per-generation cost multiplier, ≥ 1.
    reference_feature_um:
        λ₀ — feature size whose wafer costs C₀ (1 µm in the paper).
    overhead_dollars:
        C_over — total fixed cost to amortize (R&D, management, NRE);
        the paper quotes $100k (ASIC) to $100M (µP) [14].
    generation_model:
        Law for g(λ); see :class:`GenerationModel`.
    shrink, linear_step_um:
        Tuning constants forwarded to the generation law.
    """

    reference_cost_dollars: float = 500.0
    cost_growth_rate: float = 1.8
    reference_feature_um: float = 1.0
    overhead_dollars: float = 0.0
    generation_model: GenerationModel = GenerationModel.SHRINK_LOG
    shrink: float = 0.7
    linear_step_um: float = 0.15

    def __post_init__(self) -> None:
        require_positive("reference_cost_dollars", self.reference_cost_dollars)
        require_at_least("cost_growth_rate", self.cost_growth_rate, 1.0)
        require_positive("reference_feature_um", self.reference_feature_um)
        require_nonnegative("overhead_dollars", self.overhead_dollars)

    def generations(self, feature_size_um: float) -> float:
        """g(λ) under this model's law and constants."""
        return self.generation_model.generations(
            feature_size_um, self.reference_feature_um,
            shrink=self.shrink, linear_step_um=self.linear_step_um)

    def pure_cost(self, feature_size_um: float) -> float:
        """Eq. (3): C'_w(λ) = C₀ · X^g(λ), in dollars."""
        return self.reference_cost_dollars \
            * self.cost_growth_rate ** self.generations(feature_size_um)

    def cost_at_volume(self, feature_size_um: float, volume_wafers: float) -> float:
        """Eq. (2): C_w = C'_w + C_over / V, in dollars per wafer."""
        require_positive("volume_wafers", volume_wafers)
        return self.pure_cost(feature_size_um) \
            + self.overhead_dollars / volume_wafers

    def breakeven_volume(self, feature_size_um: float,
                         overhead_share: float = 0.5) -> float:
        """Volume at which overhead is the given share of total wafer cost.

        Answers the paper's Sec.-III.A.a concern quantitatively: below
        this volume, fixed costs dominate.  ``overhead_share`` in (0, 1).
        """
        if not 0.0 < overhead_share < 1.0:
            raise ParameterError(
                f"overhead_share must be in (0, 1), got {overhead_share}")
        if self.overhead_dollars == 0.0:
            return 0.0
        pure = self.pure_cost(feature_size_um)
        # C_over/V = share/(1-share) * C'_w  =>  V = C_over*(1-share)/(share*C'_w)
        return self.overhead_dollars * (1.0 - overhead_share) \
            / (overhead_share * pure)

    def with_growth_rate(self, cost_growth_rate: float) -> "WaferCostModel":
        """A copy of this model with a different X (for X-sweeps)."""
        return WaferCostModel(
            reference_cost_dollars=self.reference_cost_dollars,
            cost_growth_rate=cost_growth_rate,
            reference_feature_um=self.reference_feature_um,
            overhead_dollars=self.overhead_dollars,
            generation_model=self.generation_model,
            shrink=self.shrink,
            linear_step_um=self.linear_step_um)


#: Published estimates of X the paper collects in Sec. III.A.b.
PUBLISHED_X_ESTIMATES: dict[str, tuple[float, float]] = {
    "Intel [14]": (1.6, 1.6),
    "Mitsubishi [1]": (1.6, 2.4),
    "Hitachi [18]": (1.5, 2.0),
    "Maly-Jacobs-Kersch [12]": (1.79, 1.79),
    "Fig. 2 extraction": (1.2, 1.4),
}
