"""Product shrink analysis — the application behind reference [26].

The paper's fitted yield constants come from "Yield Model for
Manufacturing Strategy Planning and Product Shrink Applications": the
decision of *when to shrink* an existing product to a finer node.  A
shrink cuts the die (λ² area gain) and so raises dies-per-wafer and
yield — but it moves production onto a costlier wafer (eq. 3) and,
early in the new node's life, onto a dirtier process (yield learning).

:class:`ShrinkAnalysis` evaluates a product at its current node and at
a candidate target node, with an optional learning curve on the target
node's defect density, and answers: what is the cost ratio today, when
does the shrink break even, and which node minimizes cost at maturity?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ParameterError
from ..geometry import Die, Wafer, dies_per_wafer_maly
from ..technology.products import ProductSpec
from ..units import require_positive
from ..yieldsim.learning import YieldLearningCurve
from ..yieldsim.models import PoissonYield, YieldModel
from .wafer_cost import WaferCostModel


@dataclass(frozen=True)
class NodeEvaluation:
    """A product evaluated at one feature size."""

    feature_size_um: float
    die_area_cm2: float
    dies_per_wafer: int
    yield_value: float
    wafer_cost_dollars: float
    cost_per_good_die_dollars: float


@dataclass(frozen=True)
class ShrinkAnalysis:
    """Shrink decision machinery for one product.

    Parameters
    ----------
    n_transistors, design_density:
        The design (fixed across nodes; a pure optical shrink keeps the
        layout, so d_d in λ² units is invariant).
    wafer:
        Production wafer.
    wafer_cost:
        Eq.-(3) wafer cost model shared by all nodes.
    mature_density_per_cm2:
        Killer-defect density of a mature node at the reference feature
        size (the λ-scaling is applied via ``size_exponent_p``).
    size_exponent_p:
        Defect-size exponent: following eq. (7)'s ``D₀ = D/λ^p``, the
        node's mature killer density is ``mature · (λ_ref/λ)^p`` —
        finer features are killed by smaller, more numerous defects.
    reference_feature_um:
        Node at which ``mature_density_per_cm2`` is quoted.
    yield_model:
        Fault-to-yield map (Poisson by default).
    """

    n_transistors: float
    design_density: float
    wafer: Wafer = field(default_factory=lambda: Wafer(radius_cm=7.5))
    wafer_cost: WaferCostModel = field(default_factory=WaferCostModel)
    mature_density_per_cm2: float = 1.0
    size_exponent_p: float = 4.07
    reference_feature_um: float = 1.0
    yield_model: YieldModel = PoissonYield()

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("design_density", self.design_density)
        require_positive("mature_density_per_cm2",
                         self.mature_density_per_cm2)
        require_positive("size_exponent_p", self.size_exponent_p)
        require_positive("reference_feature_um", self.reference_feature_um)

    @classmethod
    def for_product(cls, spec: ProductSpec, **overrides) -> "ShrinkAnalysis":
        """Build from a Table-3 :class:`ProductSpec`."""
        defaults = dict(
            n_transistors=spec.n_transistors,
            design_density=spec.design_density,
            wafer=Wafer(radius_cm=spec.wafer_radius_cm),
            wafer_cost=WaferCostModel(
                reference_cost_dollars=spec.reference_wafer_cost_dollars,
                cost_growth_rate=spec.cost_growth_rate))
        defaults.update(overrides)
        return cls(**defaults)

    def mature_density_at(self, feature_size_um: float) -> float:
        """Mature killer density at a node: eq. (7)'s D₀ = D/λ^p scaling."""
        require_positive("feature_size_um", feature_size_um)
        scale = (self.reference_feature_um / feature_size_um) \
            ** self.size_exponent_p
        return self.mature_density_per_cm2 * scale

    def evaluate_node(self, feature_size_um: float,
                      defect_density_per_cm2: float | None = None,
                      ) -> NodeEvaluation:
        """The product at one node; density defaults to the mature value."""
        die = Die.from_transistor_count(self.n_transistors,
                                        self.design_density,
                                        feature_size_um)
        n_ch = dies_per_wafer_maly(self.wafer, die)
        if n_ch < 1:
            raise ParameterError(
                f"die of {die.area_cm2:.2f} cm2 at {feature_size_um} um "
                "does not fit the wafer")
        density = defect_density_per_cm2 \
            if defect_density_per_cm2 is not None \
            else self.mature_density_at(feature_size_um)
        y = self.yield_model.yield_for_area(die.area_cm2, density)
        if y <= 0.0:
            raise ParameterError(
                f"yield underflows at {feature_size_um} um")
        c_w = self.wafer_cost.pure_cost(feature_size_um)
        return NodeEvaluation(
            feature_size_um=feature_size_um,
            die_area_cm2=die.area_cm2,
            dies_per_wafer=n_ch,
            yield_value=y,
            wafer_cost_dollars=c_w,
            cost_per_good_die_dollars=c_w / (n_ch * y))

    def cost_per_transistor(self, feature_size_um: float,
                            defect_density_per_cm2: float | None = None,
                            ) -> float:
        """C_tr (dollars) at a node."""
        node = self.evaluate_node(feature_size_um, defect_density_per_cm2)
        return node.cost_per_good_die_dollars / self.n_transistors

    def shrink_gain_at_maturity(self, from_um: float, to_um: float) -> float:
        """Mature cost ratio old/new: > 1 means the shrink pays."""
        require_positive("from_um", from_um)
        require_positive("to_um", to_um)
        if to_um >= from_um:
            raise ParameterError("to_um must be finer than from_um")
        old = self.cost_per_transistor(from_um)
        new = self.cost_per_transistor(to_um)
        return old / new

    def breakeven_month(self, from_um: float, to_um: float,
                        learning: YieldLearningCurve, *,
                        horizon_months: float = 48.0,
                        dt_months: float = 1.0) -> float | None:
        """First month the (learning) target node beats the mature old node.

        ``learning`` describes the target node's defect-density ramp
        (its mature floor should equal ``mature_density_at(to_um)`` for
        consistency — not enforced, so 'what-if dirtier floor' studies
        are possible).  None if the shrink never wins inside the horizon.
        """
        old_cost = self.cost_per_transistor(from_um)
        t = 0.0
        while t <= horizon_months:
            density = learning.density(t)
            try:
                new_cost = self.cost_per_transistor(to_um, density)
            except ParameterError:
                new_cost = math.inf
            if new_cost < old_cost:
                return t
            t += dt_months
        return None

    def best_node(self, candidates: tuple[float, ...]) -> tuple[float, float]:
        """The candidate node with the lowest mature C_tr.

        Returns ``(λ_best, C_tr at λ_best)``; infeasible candidates are
        skipped; raises if none is feasible.
        """
        if not candidates:
            raise ParameterError("candidates must be non-empty")
        best: tuple[float, float] | None = None
        for lam in candidates:
            try:
                cost = self.cost_per_transistor(lam)
            except ParameterError:
                continue
            if best is None or cost < best[1]:
                best = (lam, cost)
        if best is None:
            raise ParameterError("no feasible candidate node")
        return best
