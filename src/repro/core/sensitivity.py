"""Sensitivity analysis of the cost model (extension).

The paper argues qualitatively that C_tr "strongly depends on the
minimum feature size, manufacturing volume and the rate of the
manufacturing cost increase"; this module quantifies that with log-log
elasticities

.. math:: E_\\theta = \\frac{\\partial \\ln C_{tr}}{\\partial \\ln \\theta}

evaluated by central finite differences on any keyword parameter of a
cost function, plus a tornado analysis ranking parameters by the cost
swing their plausible ranges induce.  Used by the ablation bench and
the scenario-explorer example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..errors import ParameterError
from ..units import require_positive

CostFunction = Callable[..., float]


def elasticity(cost_fn: CostFunction, params: Mapping[str, float],
               parameter: str, *, rel_step: float = 1e-4) -> float:
    """Log-log elasticity of ``cost_fn`` with respect to one parameter.

    ``params`` holds the evaluation point (all keyword arguments the
    function needs); ``parameter`` names the one to perturb.  The
    parameter must be positive (elasticities are log-derivatives).
    """
    if parameter not in params:
        raise ParameterError(f"parameter {parameter!r} not in params")
    value = params[parameter]
    require_positive(parameter, value)
    require_positive("rel_step", rel_step)

    up = dict(params)
    down = dict(params)
    up[parameter] = value * (1.0 + rel_step)
    down[parameter] = value * (1.0 - rel_step)
    c_up = cost_fn(**up)
    c_down = cost_fn(**down)
    if c_up <= 0 or c_down <= 0:
        raise ParameterError(
            f"cost function must be positive near the evaluation point "
            f"(got {c_down!r}, {c_up!r})")
    return (math.log(c_up) - math.log(c_down)) \
        / (math.log(up[parameter]) - math.log(down[parameter]))


@dataclass(frozen=True)
class TornadoBar:
    """One parameter's contribution in a tornado analysis."""

    parameter: str
    low_value: float
    high_value: float
    cost_at_low: float
    cost_at_high: float
    baseline_cost: float

    @property
    def swing(self) -> float:
        """Absolute cost range induced by the parameter's range."""
        return abs(self.cost_at_high - self.cost_at_low)

    @property
    def relative_swing(self) -> float:
        """Swing normalized by the baseline cost."""
        return self.swing / self.baseline_cost


def tornado(cost_fn: CostFunction, baseline: Mapping[str, float],
            ranges: Mapping[str, tuple[float, float]]) -> list[TornadoBar]:
    """One-at-a-time tornado analysis, sorted by descending swing.

    Each parameter in ``ranges`` is set to its low and high bound while
    all others stay at the baseline; the resulting cost swings are
    ranked.  The classic way to show which knob (X? Y₀? d_d? λ?)
    dominates a product's cost.
    """
    base_cost = cost_fn(**baseline)
    require_positive("baseline cost", base_cost)
    bars = []
    for name, (low, high) in ranges.items():
        if name not in baseline:
            raise ParameterError(f"range given for unknown parameter {name!r}")
        if not low < high:
            raise ParameterError(
                f"range for {name!r} must satisfy low < high, got ({low}, {high})")
        at_low = dict(baseline)
        at_high = dict(baseline)
        at_low[name] = low
        at_high[name] = high
        bars.append(TornadoBar(
            parameter=name, low_value=low, high_value=high,
            cost_at_low=cost_fn(**at_low), cost_at_high=cost_fn(**at_high),
            baseline_cost=base_cost))
    return sorted(bars, key=lambda b: b.swing, reverse=True)


def elasticity_profile(cost_fn: CostFunction, params: Mapping[str, float],
                       parameters: Sequence[str] | None = None) -> dict[str, float]:
    """Elasticities for several parameters at once, as a dict.

    ``parameters`` defaults to every positive entry of ``params``.
    """
    names = list(parameters) if parameters is not None else [
        k for k, v in params.items()
        if isinstance(v, (int, float)) and v > 0]
    return {name: elasticity(cost_fn, params, name) for name in names}
