"""Cost diversity — the Table-3 engine (Sec. IV.C).

Table 3 runs the cost model of eqs. (1), (3), (4) over 17 product-
manufacturing scenarios with the reference-area yield law
``Y = Y₀^(A_ch/A₀)`` (see DESIGN.md, deviation 3) and exhibits a 250×
spread in cost per transistor.  :func:`evaluate_product` reproduces one
row from a :class:`~repro.technology.products.ProductSpec`;
:func:`evaluate_catalog` reproduces the whole table and computes the
agreement statistics quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..geometry import Wafer
from ..technology.products import PRODUCT_CATALOG, ProductSpec
from ..yieldsim.models import ReferenceAreaYield
from .transistor_cost import CostBreakdown, TransistorCostModel
from .wafer_cost import GenerationModel, WaferCostModel


@dataclass(frozen=True)
class CostResult:
    """One evaluated Table-3 row: the spec, the breakdown, the comparison."""

    spec: ProductSpec
    breakdown: CostBreakdown

    @property
    def ctr_microdollars(self) -> float:
        """Modeled C_tr in the table's $·10⁻⁶ unit."""
        return self.breakdown.cost_per_transistor_microdollars

    @property
    def published_microdollars(self) -> float | None:
        """The paper's value for this row, if published."""
        return self.spec.published_ctr_microdollars

    @property
    def log_error(self) -> float | None:
        """``ln(modeled / published)``; None when no published value."""
        if self.published_microdollars is None:
            return None
        return math.log(self.ctr_microdollars / self.published_microdollars)

    @property
    def ratio(self) -> float | None:
        """modeled / published; None when no published value."""
        if self.published_microdollars is None:
            return None
        return self.ctr_microdollars / self.published_microdollars


def evaluate_product(spec: ProductSpec, *,
                     generation_model: GenerationModel = GenerationModel.SHRINK_LOG,
                     reference_area_cm2: float = 1.0) -> CostResult:
    """Evaluate the full cost model for one product scenario.

    Composition: eq. (3) wafer cost from the spec's (C₀, X); eq. (4)
    die count on the spec's wafer; yield ``Y₀^(A_ch/A₀)``; eq. (1).
    """
    wafer_cost = WaferCostModel(
        reference_cost_dollars=spec.reference_wafer_cost_dollars,
        cost_growth_rate=spec.cost_growth_rate,
        generation_model=generation_model)
    model = TransistorCostModel(
        wafer_cost=wafer_cost,
        wafer=Wafer(radius_cm=spec.wafer_radius_cm))
    breakdown = model.evaluate(
        n_transistors=spec.n_transistors,
        feature_size_um=spec.feature_size_um,
        design_density=spec.design_density,
        yield_model=ReferenceAreaYield(
            reference_yield=spec.reference_yield,
            reference_area_cm2=reference_area_cm2))
    return CostResult(spec=spec, breakdown=breakdown)


def evaluate_catalog(catalog: tuple[ProductSpec, ...] = PRODUCT_CATALOG, *,
                     generation_model: GenerationModel = GenerationModel.SHRINK_LOG,
                     ) -> list[CostResult]:
    """Evaluate every row of (by default) the paper's Table 3."""
    return [evaluate_product(spec, generation_model=generation_model)
            for spec in catalog]


def agreement_statistics(results: list[CostResult]) -> dict[str, float]:
    """Paper-vs-model statistics over rows with published values.

    Returns mean and max absolute log error, the modeled and published
    cost spreads (max/min ratio across rows), and the count of compared
    rows.  Reconstructed rows (OCR-recovered N_tr) are excluded from
    the error statistics but included in the spreads.
    """
    compared = [r for r in results
                if r.published_microdollars is not None
                and not r.spec.reconstructed]
    if not compared:
        raise ParameterError("no rows with published values to compare")
    abs_errors = [abs(r.log_error) for r in compared]  # type: ignore[arg-type]
    modeled = [r.ctr_microdollars for r in results]
    published = [r.published_microdollars for r in results
                 if r.published_microdollars is not None]
    return {
        "n_compared": float(len(compared)),
        "mean_abs_log_error": sum(abs_errors) / len(abs_errors),
        "max_abs_log_error": max(abs_errors),
        "modeled_spread": max(modeled) / min(modeled),
        "published_spread": max(published) / min(published),
    }


def cheapest_and_dearest(results: list[CostResult]) -> tuple[CostResult, CostResult]:
    """The extreme rows of the diversity table (model values)."""
    if not results:
        raise ParameterError("results must be non-empty")
    ordered = sorted(results, key=lambda r: r.ctr_microdollars)
    return ordered[0], ordered[-1]
