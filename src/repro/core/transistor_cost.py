"""Transistor cost — eqs. (1), (8) and (9) of the paper.

The headline model is eq. (1):

.. math:: C_{tr} = \\frac{C_w}{N_{ch}\\, N_{tr}\\, Y}

— wafer cost divided by (dies per wafer × transistors per die × yield).
:class:`TransistorCostModel` composes the substrate models:

* wafer cost from :class:`~repro.core.wafer_cost.WaferCostModel` (eq. 3),
* dies per wafer from :mod:`repro.geometry` (eq. 4),
* transistors per die from design density (eq. 5),
* yield from any :class:`~repro.yieldsim.models.YieldModel` or a
  directly supplied value (eqs. 6/7 or the Y₀^(A/A₀) law).

Eq. (8) — Scenario #1's wafer-level approximation, which replaces the
die-count geometry by gross wafer area (valid for small dies and
Y = 1):

.. math:: C_{tr} = \\frac{C'_w(\\lambda)\\, d_d\\, \\lambda^2}{A_w}

and eq. (9) — Scenario #2's form with the Fig.-3 die-size trend and the
reference-area yield law — are provided as class methods so the
Figs. 6/7 benches can use exactly the approximations the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..geometry import Die, Wafer, dies_per_wafer_maly
from ..units import (
    cm2_to_um2,
    require_fraction,
    require_positive,
)
from ..yieldsim.models import ReferenceAreaYield, YieldModel
from .wafer_cost import WaferCostModel


@dataclass(frozen=True)
class CostBreakdown:
    """Itemized result of one eq.-(1) evaluation.

    All the intermediate quantities a designer would want to audit:
    geometry, yield, per-wafer / per-die / per-transistor costs.
    """

    feature_size_um: float
    wafer_cost_dollars: float
    die_area_cm2: float
    dies_per_wafer: int
    transistors_per_die: float
    yield_value: float
    cost_per_transistor_dollars: float

    @property
    def cost_per_transistor_microdollars(self) -> float:
        """C_tr in the paper's Table-3 unit, $·10⁻⁶."""
        return self.cost_per_transistor_dollars * 1.0e6

    @property
    def good_dies_per_wafer(self) -> float:
        """Expected functioning dies per wafer: N_ch · Y."""
        return self.dies_per_wafer * self.yield_value

    @property
    def cost_per_good_die_dollars(self) -> float:
        """Wafer cost spread over functioning dies."""
        return self.wafer_cost_dollars / self.good_dies_per_wafer

    def __post_init__(self) -> None:  # noqa: D105 - validation only
        require_positive("feature_size_um", self.feature_size_um)
        require_positive("wafer_cost_dollars", self.wafer_cost_dollars)
        require_positive("die_area_cm2", self.die_area_cm2)
        if self.dies_per_wafer < 1:
            raise ParameterError(
                f"no complete dies fit the wafer (dies_per_wafer="
                f"{self.dies_per_wafer}); cost per transistor is undefined")
        require_positive("transistors_per_die", self.transistors_per_die)
        require_fraction("yield_value", self.yield_value, inclusive_low=False)
        require_positive("cost_per_transistor_dollars",
                         self.cost_per_transistor_dollars)


# `silicon_utilization` above would need the wafer context; expose it as a
# free function instead so the breakdown stays a plain value object.
def silicon_utilization(breakdown: CostBreakdown, wafer: Wafer) -> float:
    """Fraction of gross wafer area covered by complete dies."""
    return breakdown.dies_per_wafer * breakdown.die_area_cm2 / wafer.area_cm2


@dataclass(frozen=True)
class TransistorCostModel:
    """Eq. (1) composed from its substrate models.

    Parameters
    ----------
    wafer_cost:
        The eq.-(3) wafer cost model.
    wafer:
        Wafer geometry (radius, edge exclusion).
    volume_wafers:
        If set, wafer cost includes the eq.-(2) overhead amortization at
        this volume; if ``None``, the pure cost C'_w is used (the
        paper's S.1.4 / S.2.4 assumption C_over = 0).
    """

    wafer_cost: WaferCostModel
    wafer: Wafer
    volume_wafers: float | None = None

    def __post_init__(self) -> None:
        if self.volume_wafers is not None:
            require_positive("volume_wafers", self.volume_wafers)

    def wafer_cost_dollars(self, feature_size_um: float) -> float:
        """C_w(λ), with overhead amortized if a volume is configured."""
        if self.volume_wafers is None:
            return self.wafer_cost.pure_cost(feature_size_um)
        return self.wafer_cost.cost_at_volume(feature_size_um, self.volume_wafers)

    def evaluate(self, *, n_transistors: float, feature_size_um: float,
                 design_density: float,
                 yield_model: YieldModel | None = None,
                 defect_density_per_cm2: float | None = None,
                 yield_value: float | None = None,
                 aspect_ratio: float = 1.0) -> CostBreakdown:
        """Full eq.-(1) evaluation for one design point.

        Yield is specified exactly one of three ways:

        * ``yield_value`` — a number, used as-is;
        * ``yield_model`` being a :class:`ReferenceAreaYield` — evaluated
          on the die area directly (the Y₀^(A/A₀) law);
        * ``yield_model`` + ``defect_density_per_cm2`` — any other model
          evaluated at that density.
        """
        require_positive("n_transistors", n_transistors)
        require_positive("feature_size_um", feature_size_um)
        require_positive("design_density", design_density)

        die = Die.from_transistor_count(
            n_transistors, design_density, feature_size_um,
            aspect_ratio=aspect_ratio)
        n_ch = dies_per_wafer_maly(self.wafer, die)
        y = self._resolve_yield(die.area_cm2, yield_model,
                                defect_density_per_cm2, yield_value)
        c_w = self.wafer_cost_dollars(feature_size_um)
        if n_ch < 1:
            raise ParameterError(
                f"die of {die.area_cm2:.2f} cm2 does not fit wafer of radius "
                f"{self.wafer.radius_cm} cm")
        ctr = c_w / (n_ch * n_transistors * y)
        return CostBreakdown(
            feature_size_um=feature_size_um,
            wafer_cost_dollars=c_w,
            die_area_cm2=die.area_cm2,
            dies_per_wafer=n_ch,
            transistors_per_die=n_transistors,
            yield_value=y,
            cost_per_transistor_dollars=ctr)

    @staticmethod
    def _resolve_yield(die_area_cm2: float, yield_model: YieldModel | None,
                       defect_density_per_cm2: float | None,
                       yield_value: float | None) -> float:
        given = [yield_model is not None, yield_value is not None]
        if sum(given) != 1:
            raise ParameterError(
                "specify exactly one of yield_model or yield_value")
        if yield_value is not None:
            require_fraction("yield_value", yield_value, inclusive_low=False)
            return yield_value
        assert yield_model is not None
        if isinstance(yield_model, ReferenceAreaYield):
            return yield_model.yield_for_die_area(die_area_cm2)
        if defect_density_per_cm2 is None:
            raise ParameterError(
                "defect_density_per_cm2 is required with this yield model")
        return yield_model.yield_for_area(die_area_cm2, defect_density_per_cm2)

    # ---- the paper's closed-form approximations --------------------------

    def scenario1_cost(self, feature_size_um: float, design_density: float) -> float:
        """Eq. (8): C_tr = C'_w(λ)·d_d·λ² / A_w, in dollars.

        The Scenario-#1 approximation: 100% yield, dies tile the gross
        wafer area with no edge loss.  Used for Fig. 6.
        """
        require_positive("design_density", design_density)
        c_w = self.wafer_cost_dollars(feature_size_um)
        wafer_area_um2 = cm2_to_um2(self.wafer.area_cm2)
        return c_w * design_density \
            * (feature_size_um * feature_size_um) / wafer_area_um2

    def scenario2_cost(self, feature_size_um: float, design_density: float,
                       *, reference_yield: float = 0.7,
                       reference_area_cm2: float = 1.0,
                       die_area_cm2: float | None = None) -> float:
        """Eq. (9): eq. (8) divided by Y₀^(A_ch(λ)/A₀), in dollars.

        ``die_area_cm2`` defaults to the Fig.-3 trend
        ``16.5·exp(−5.3 λ)`` exactly as the paper uses for Fig. 7.
        """
        from ..technology.roadmap import die_area_trend_cm2
        area = die_area_trend_cm2(feature_size_um) if die_area_cm2 is None \
            else die_area_cm2
        require_positive("die_area_cm2", area)
        y = ReferenceAreaYield(reference_yield, reference_area_cm2) \
            .yield_for_die_area(area)
        return self.scenario1_cost(feature_size_um, design_density) / y
