"""Fab economics substrates: Sec. III.A's cost factors beyond eq. (3).

* :mod:`~repro.manufacturing.volume` — eq. (2): volume and overhead.
* :mod:`~repro.manufacturing.equipment` — equipment set, capacity and
  utilization bookkeeping.
* :mod:`~repro.manufacturing.product_mix` — the multi-product
  low-volume wafer-cost penalty (the "ratio ... may reach as high
  value as 7" result of [12]).
* :mod:`~repro.manufacturing.test_cost` — probe/final test time and
  cost, fault escapes (Sec. III.A.e and Sec. VI).
"""

from .volume import VolumeCostCurve
from .equipment import Equipment, EquipmentType, ProcessStep, ProcessFlow
from .product_mix import FabLoad, ProductDemand, mix_cost_ratio
from .test_cost import TestCostModel, TestEconomics
from .cost_of_ownership import (
    BottomUpWaferCost,
    StepCost,
    WaferCostBreakdown,
)
from .throughput import (
    CycleTimeCost,
    FabDynamics,
    StationAnalysis,
    erlang_c,
    mmc_wait_hours,
)
from .investment import FabInvestment, irr, npv

__all__ = [
    "VolumeCostCurve",
    "Equipment",
    "EquipmentType",
    "ProcessStep",
    "ProcessFlow",
    "FabLoad",
    "ProductDemand",
    "mix_cost_ratio",
    "TestCostModel",
    "TestEconomics",
    "BottomUpWaferCost",
    "StepCost",
    "WaferCostBreakdown",
    "FabDynamics",
    "StationAnalysis",
    "CycleTimeCost",
    "erlang_c",
    "mmc_wait_hours",
    "FabInvestment",
    "npv",
    "irr",
]
