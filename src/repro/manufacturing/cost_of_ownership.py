"""Bottom-up wafer cost: the [12] "Estimation of Wafer Cost for
Technology Design" substrate.

Eq. (3) treats the wafer-cost growth rate X as an empirical constant.
This module *derives* it: a wafer's pure manufacturing cost is built
step by step from the process flow —

.. math::

    C'_w = \\sum_{steps} \\Big(
        \\underbrace{\\frac{P_{tool}/T_{dep} + M_{tool}}{U \\cdot H \\cdot TP}}_{equipment}
      + \\underbrace{w \\cdot t_{step}}_{labor}
      + \\underbrace{m_{step}}_{materials} \\Big)
      + \\text{facility overhead per wafer}

where each generation (a) adds steps (Fig. 4), (b) raises per-tool
price (lithography above all), and (c) tightens cleanroom class.
Composing these with the step-count trend reproduces an effective X in
the published 1.2–2.4 range — the bench ``bench_bottom_up_wafer_cost``
performs exactly that extraction, closing the loop between Fig. 4 and
eq. (3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive
from .equipment import EquipmentType

#: Representative mid-1990s tool prices in dollars, by equipment group.
#: Lithography dominates and inflates fastest with each generation.
DEFAULT_TOOL_PRICES: dict[EquipmentType, float] = {
    EquipmentType.LITHOGRAPHY: 4.0e6,
    EquipmentType.ETCH: 1.5e6,
    EquipmentType.DEPOSITION: 1.8e6,
    EquipmentType.IMPLANT: 2.5e6,
    EquipmentType.DIFFUSION: 0.8e6,
    EquipmentType.CMP: 1.2e6,
    EquipmentType.METROLOGY: 0.7e6,
    EquipmentType.CLEAN: 0.5e6,
    EquipmentType.TEST: 2.0e6,
}

#: Per-generation price inflation of each tool group (lithography's
#: resolution race is the canonical driver of X).
DEFAULT_TOOL_PRICE_GROWTH: dict[EquipmentType, float] = {
    EquipmentType.LITHOGRAPHY: 1.5,
    EquipmentType.ETCH: 1.2,
    EquipmentType.DEPOSITION: 1.2,
    EquipmentType.IMPLANT: 1.15,
    EquipmentType.DIFFUSION: 1.1,
    EquipmentType.CMP: 1.25,
    EquipmentType.METROLOGY: 1.3,
    EquipmentType.CLEAN: 1.2,
    EquipmentType.TEST: 1.25,
}


@dataclass(frozen=True)
class StepCost:
    """Cost parameters of one process step.

    Parameters
    ----------
    kind:
        Equipment group performing the step.
    tool_price_dollars:
        Purchase price of the tool.
    throughput_wafers_per_hour:
        Wafers the tool processes per hour at this step.
    labor_minutes:
        Operator/technician attention per wafer.
    materials_dollars:
        Consumables (resist, gases, slurry, targets) per wafer.
    """

    kind: EquipmentType
    tool_price_dollars: float
    throughput_wafers_per_hour: float
    labor_minutes: float = 0.5
    materials_dollars: float = 1.0

    def __post_init__(self) -> None:
        require_positive("tool_price_dollars", self.tool_price_dollars)
        require_positive("throughput_wafers_per_hour",
                         self.throughput_wafers_per_hour)
        require_nonnegative("labor_minutes", self.labor_minutes)
        require_nonnegative("materials_dollars", self.materials_dollars)

    def cost_per_wafer(self, *, depreciation_years: float = 5.0,
                       maintenance_fraction_per_year: float = 0.08,
                       utilization: float = 0.85,
                       hours_per_year: float = 7500.0,
                       labor_rate_per_hour: float = 40.0) -> float:
        """All-in cost of pushing one wafer through this step, dollars."""
        require_positive("depreciation_years", depreciation_years)
        require_fraction("utilization", utilization, inclusive_low=False)
        require_positive("hours_per_year", hours_per_year)
        require_nonnegative("labor_rate_per_hour", labor_rate_per_hour)
        annual_tool_cost = self.tool_price_dollars / depreciation_years \
            + self.tool_price_dollars * maintenance_fraction_per_year
        wafers_per_year = self.throughput_wafers_per_hour * hours_per_year \
            * utilization
        equipment = annual_tool_cost / wafers_per_year
        labor = labor_rate_per_hour * self.labor_minutes / 60.0
        return equipment + labor + self.materials_dollars


@dataclass(frozen=True)
class WaferCostBreakdown:
    """Result of one bottom-up wafer cost evaluation."""

    equipment_dollars: float
    labor_dollars: float
    materials_dollars: float
    facility_dollars: float
    n_steps: int

    @property
    def total_dollars(self) -> float:
        """Total pure manufacturing cost per wafer."""
        return self.equipment_dollars + self.labor_dollars \
            + self.materials_dollars + self.facility_dollars

    def share(self, component: str) -> float:
        """Fraction of total contributed by one component name."""
        value = getattr(self, f"{component}_dollars", None)
        if value is None:
            raise ParameterError(f"unknown cost component {component!r}")
        return value / self.total_dollars


@dataclass(frozen=True)
class BottomUpWaferCost:
    """Generation-aware bottom-up wafer cost model.

    The step mix for a node is synthesized from the
    :class:`~repro.technology.roadmap.TechnologyRoadmap` step-count
    trend; per-step economics shift with the generation index through
    tool-price growth and cleanroom (facility) cost growth.

    Parameters
    ----------
    reference_feature_um:
        λ at which generation index is zero (1 µm, as in eq. 3).
    steps_at_reference, steps_per_generation:
        Step-count trend (Fig. 4's upper curve).
    facility_cost_at_reference:
        Cleanroom + utilities dollars per wafer at the reference node.
    facility_growth_per_generation:
        Contamination-standard tightening factor per generation (the
        Fig. 4 lower curve's cost shadow).
    tool_prices, tool_price_growth:
        Per-group tool economics (defaults above).
    step_mix:
        Fraction of steps by equipment group; defaults to a
        representative CMOS mix (litho-centric).
    """

    reference_feature_um: float = 1.0
    steps_at_reference: float = 250.0
    steps_per_generation: float = 50.0
    facility_cost_at_reference: float = 60.0
    facility_growth_per_generation: float = 1.25
    shrink_per_generation: float = 0.7
    tool_prices: dict[EquipmentType, float] = field(
        default_factory=lambda: dict(DEFAULT_TOOL_PRICES))
    tool_price_growth: dict[EquipmentType, float] = field(
        default_factory=lambda: dict(DEFAULT_TOOL_PRICE_GROWTH))
    step_mix: dict[EquipmentType, float] = field(default_factory=lambda: {
        EquipmentType.LITHOGRAPHY: 0.22,
        EquipmentType.ETCH: 0.18,
        EquipmentType.CLEAN: 0.18,
        EquipmentType.DEPOSITION: 0.12,
        EquipmentType.METROLOGY: 0.12,
        EquipmentType.DIFFUSION: 0.08,
        EquipmentType.IMPLANT: 0.06,
        EquipmentType.CMP: 0.04,
    })

    def __post_init__(self) -> None:
        require_positive("reference_feature_um", self.reference_feature_um)
        require_positive("steps_at_reference", self.steps_at_reference)
        require_nonnegative("steps_per_generation", self.steps_per_generation)
        require_nonnegative("facility_cost_at_reference",
                            self.facility_cost_at_reference)
        require_positive("facility_growth_per_generation",
                         self.facility_growth_per_generation)
        if not 0.0 < self.shrink_per_generation < 1.0:
            raise ParameterError("shrink_per_generation must be in (0, 1)")
        total_mix = sum(self.step_mix.values())
        if not math.isclose(total_mix, 1.0, rel_tol=1e-6):
            raise ParameterError(
                f"step_mix fractions must sum to 1, got {total_mix}")
        for kind in self.step_mix:
            if kind not in self.tool_prices:
                raise ParameterError(f"no tool price for {kind.value}")
            if kind not in self.tool_price_growth:
                raise ParameterError(f"no price growth for {kind.value}")

    def generation_index(self, feature_size_um: float) -> float:
        """Generations from the reference node (shrink-log convention)."""
        require_positive("feature_size_um", feature_size_um)
        return math.log(self.reference_feature_um / feature_size_um) \
            / math.log(1.0 / self.shrink_per_generation)

    def n_steps(self, feature_size_um: float) -> float:
        """Step count at a node (clipped at a floor of 50)."""
        g = self.generation_index(feature_size_um)
        return max(self.steps_at_reference + self.steps_per_generation * g,
                   50.0)

    def _steps_for(self, feature_size_um: float) -> list[tuple[StepCost, float]]:
        """(step cost record, number of such steps) per equipment group."""
        g = self.generation_index(feature_size_um)
        total_steps = self.n_steps(feature_size_um)
        out = []
        for kind, fraction in self.step_mix.items():
            price = self.tool_prices[kind] \
                * self.tool_price_growth[kind] ** g
            # Throughput erodes slowly with complexity (more passes,
            # tighter overlay): 5% per generation.
            throughput = 60.0 * 0.95 ** max(g, 0.0)
            step = StepCost(kind=kind, tool_price_dollars=price,
                            throughput_wafers_per_hour=throughput)
            out.append((step, fraction * total_steps))
        return out

    def breakdown(self, feature_size_um: float) -> WaferCostBreakdown:
        """Itemized pure wafer cost at a node."""
        g = self.generation_index(feature_size_um)
        equipment = labor = materials = 0.0
        n_steps = 0.0
        for step, count in self._steps_for(feature_size_um):
            per = step.cost_per_wafer()
            labor_part = 40.0 * step.labor_minutes / 60.0
            equipment += (per - labor_part - step.materials_dollars) * count
            labor += labor_part * count
            materials += step.materials_dollars * count
            n_steps += count
        facility = self.facility_cost_at_reference \
            * self.facility_growth_per_generation ** g
        return WaferCostBreakdown(
            equipment_dollars=equipment, labor_dollars=labor,
            materials_dollars=materials, facility_dollars=facility,
            n_steps=int(round(n_steps)))

    def cost(self, feature_size_um: float) -> float:
        """Total pure wafer cost at a node, dollars."""
        return self.breakdown(feature_size_um).total_dollars

    def effective_growth_rate(self, lam_fine_um: float = 0.35,
                              lam_coarse_um: float = 1.0) -> float:
        """The X this bottom-up model implies between two nodes.

        ``X = (C(fine)/C(coarse))^(1/generations)`` — directly comparable
        to the published estimates eq. (3) collects (1.2–2.4).
        """
        require_positive("lam_fine_um", lam_fine_um)
        require_positive("lam_coarse_um", lam_coarse_um)
        if lam_fine_um >= lam_coarse_um:
            raise ParameterError("lam_fine_um must be below lam_coarse_um")
        generations = self.generation_index(lam_fine_um) \
            - self.generation_index(lam_coarse_um)
        ratio = self.cost(lam_fine_um) / self.cost(lam_coarse_um)
        return ratio ** (1.0 / generations)

    def with_contamination_crisis(self,
                                  facility_growth: float = 1.8) -> "BottomUpWaferCost":
        """The paper's S.1.1 caveat: X 'may grow ... at any juncture
        requiring quantum improvements in contamination control' —
        returns a copy with the facility growth cranked up."""
        return replace(self, facility_growth_per_generation=facility_growth)
