"""Test cost — Sec. III.A.e and the Sec.-VI DFT/BIST economics.

The paper stresses that (a) test cost grows with die size and shrinking
feature size, "in the extreme case the cost of testing a wafer may be
comparable with the cost of manufacturing", and (b) no adequate
analytical test-cost models existed — designers could not quantify what
a DFT/BIST investment buys.  This module supplies the simple analytical
model that discussion calls for:

* probe (wafer-level) test: per-die time growing with transistor count,
  tester-hour cost, applied to every die;
* final (packaged) test: applied only to dies that passed probe;
* fault coverage below 1 lets bad dies *escape* to the field at a
  (large) per-escape cost — the quantity that makes DFT/BIST pay.

:class:`TestEconomics` composes yield, coverage and costs to answer the
paper's question: what is the net benefit of a technique that spends
silicon area to raise coverage or cut test time?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive


@dataclass(frozen=True)
class TestCostModel:
    """Per-die probe and final test cost.

    Test time is modeled as ``base + per_kilotransistor · N_tr/1000``
    seconds (vector volume grows with logic size; the linear form is the
    standard first-order model), costed at a tester rate in $/hour.
    """

    # Not a pytest test class despite the Test* name.
    __test__ = False

    tester_rate_dollars_per_hour: float = 300.0
    probe_base_seconds: float = 2.0
    probe_seconds_per_kilotransistor: float = 0.002
    final_base_seconds: float = 5.0
    final_seconds_per_kilotransistor: float = 0.004

    def __post_init__(self) -> None:
        require_positive("tester_rate_dollars_per_hour",
                         self.tester_rate_dollars_per_hour)
        require_nonnegative("probe_base_seconds", self.probe_base_seconds)
        require_nonnegative("probe_seconds_per_kilotransistor",
                            self.probe_seconds_per_kilotransistor)
        require_nonnegative("final_base_seconds", self.final_base_seconds)
        require_nonnegative("final_seconds_per_kilotransistor",
                            self.final_seconds_per_kilotransistor)

    def probe_seconds(self, n_transistors: float) -> float:
        """Wafer-probe time per die, seconds."""
        require_positive("n_transistors", n_transistors)
        return self.probe_base_seconds \
            + self.probe_seconds_per_kilotransistor * n_transistors / 1000.0

    def final_seconds(self, n_transistors: float) -> float:
        """Final (packaged) test time per die, seconds."""
        require_positive("n_transistors", n_transistors)
        return self.final_base_seconds \
            + self.final_seconds_per_kilotransistor * n_transistors / 1000.0

    def probe_cost(self, n_transistors: float) -> float:
        """Probe cost per die, dollars."""
        return self.probe_seconds(n_transistors) \
            * self.tester_rate_dollars_per_hour / 3600.0

    def final_cost(self, n_transistors: float) -> float:
        """Final test cost per die, dollars."""
        return self.final_seconds(n_transistors) \
            * self.tester_rate_dollars_per_hour / 3600.0

    def wafer_test_cost(self, n_transistors: float, dies_per_wafer: int) -> float:
        """Probe cost for every die on a wafer, dollars.

        Compare against the wafer's manufacturing cost to reproduce the
        paper's "may be comparable" extreme.
        """
        if dies_per_wafer < 1:
            raise ParameterError(
                f"dies_per_wafer must be >= 1, got {dies_per_wafer}")
        return self.probe_cost(n_transistors) * dies_per_wafer


@dataclass(frozen=True)
class TestEconomics:
    """Shipped-quality economics: yield × coverage × escape cost.

    With die yield Y and fault coverage c, classical test theory
    (Williams/Brown) gives the *defect level* — the fraction of shipped
    parts that are actually bad:

    .. math:: DL = 1 - Y^{1 - c}

    Each escaped bad part costs ``escape_cost_dollars`` (board rework,
    field return, reputation — orders of magnitude above die cost).
    """

    # Not a pytest test class despite the Test* name.
    __test__ = False

    yield_value: float
    fault_coverage: float
    escape_cost_dollars: float = 100.0
    test_model: TestCostModel = TestCostModel()

    def __post_init__(self) -> None:
        require_fraction("yield_value", self.yield_value, inclusive_low=False)
        require_fraction("fault_coverage", self.fault_coverage)
        require_nonnegative("escape_cost_dollars", self.escape_cost_dollars)

    @property
    def defect_level(self) -> float:
        """Williams–Brown defect level ``1 − Y^{1−c}``."""
        return 1.0 - self.yield_value ** (1.0 - self.fault_coverage)

    def shipped_fraction(self) -> float:
        """Fraction of tested dies that ship: pass-the-test probability.

        A die ships if it is good, or bad-but-undetected:
        ``Y + (1 − Y)·Y^{?}``... under the Williams–Brown derivation the
        pass probability is ``Y / (1 − DL) = Y^c``; we use that identity
        so ``shipped · DL`` is exactly the escaped-bad rate.  Clamped at
        1.0 against one-ulp float overshoot when coverage is 0.
        """
        return min(self.yield_value / (1.0 - self.defect_level), 1.0)

    def cost_per_shipped_die(self, n_transistors: float,
                             die_manufacturing_cost: float) -> float:
        """All-in cost per *shipped* die: silicon + test + expected escapes.

        Silicon and probe are paid per tested die; final test per
        passing die; the escape penalty per shipped die in expectation.
        """
        require_positive("die_manufacturing_cost", die_manufacturing_cost)
        probe = self.test_model.probe_cost(n_transistors)
        final = self.test_model.final_cost(n_transistors)
        shipped = self.shipped_fraction()
        per_shipped = (die_manufacturing_cost + probe) / shipped + final
        return per_shipped + self.defect_level * self.escape_cost_dollars

    def with_dft(self, *, coverage_gain: float, area_overhead_fraction: float,
                 test_time_factor: float = 0.5) -> "DftOutcome":
        """Evaluate a DFT/BIST option: more coverage, more area, less time.

        ``coverage_gain`` adds to fault coverage (clamped at 1);
        ``area_overhead_fraction`` inflates die cost proportionally
        (first order: cost per die scales with area through both silicon
        and yield); ``test_time_factor`` scales test times (BIST
        compresses external test).  Returns a :class:`DftOutcome` pairing
        the baseline and the modified economics for comparison.
        """
        require_nonnegative("coverage_gain", coverage_gain)
        require_fraction("area_overhead_fraction", area_overhead_fraction,
                         inclusive_high=False)
        require_positive("test_time_factor", test_time_factor)
        new_coverage = min(self.fault_coverage + coverage_gain, 1.0)
        scaled_model = replace(
            self.test_model,
            probe_base_seconds=self.test_model.probe_base_seconds * test_time_factor,
            probe_seconds_per_kilotransistor=(
                self.test_model.probe_seconds_per_kilotransistor * test_time_factor),
            final_base_seconds=self.test_model.final_base_seconds * test_time_factor,
            final_seconds_per_kilotransistor=(
                self.test_model.final_seconds_per_kilotransistor * test_time_factor))
        improved = TestEconomics(
            yield_value=self.yield_value,
            fault_coverage=new_coverage,
            escape_cost_dollars=self.escape_cost_dollars,
            test_model=scaled_model)
        return DftOutcome(baseline=self, improved=improved,
                          area_overhead_fraction=area_overhead_fraction)


@dataclass(frozen=True)
class DftOutcome:
    """Baseline-vs-DFT comparison produced by :meth:`TestEconomics.with_dft`."""

    baseline: TestEconomics
    improved: TestEconomics
    area_overhead_fraction: float

    def net_benefit_per_shipped_die(self, n_transistors: float,
                                    die_manufacturing_cost: float) -> float:
        """Dollars saved per shipped die by adopting the DFT option.

        Positive means DFT pays; the area overhead charges the improved
        side a proportionally costlier die.
        """
        base = self.baseline.cost_per_shipped_die(
            n_transistors, die_manufacturing_cost)
        dft_die_cost = die_manufacturing_cost \
            * (1.0 + self.area_overhead_fraction)
        improved = self.improved.cost_per_shipped_die(
            n_transistors, dft_die_cost)
        return base - improved
