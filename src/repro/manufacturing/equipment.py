"""Equipment and process-flow bookkeeping.

Substrate for the product-mix model (Sec. III.A.d): a fabline is a set
of equipment groups, each with an hourly capacity and an ownership cost
that accrues whether the tool is busy or idle ("the cost of 'ownership'
for same equipment may be the same for 'active' and 'inactive'
equipment usage").  A product's process flow demands hours on specific
equipment types per wafer; loading flows onto the equipment set yields
utilizations, the bottleneck, and the ownership cost per wafer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import CapacityError, ParameterError
from ..units import require_nonnegative, require_positive


class EquipmentType(enum.Enum):
    """Coarse equipment groups of a CMOS fabline of the paper's era."""

    LITHOGRAPHY = "lithography"
    ETCH = "etch"
    DEPOSITION = "deposition"
    IMPLANT = "implant"
    DIFFUSION = "diffusion/oxidation"
    CMP = "cmp"
    METROLOGY = "metrology"
    CLEAN = "clean"
    TEST = "test"


@dataclass(frozen=True)
class Equipment:
    """An equipment group: identical tools operated as one capacity pool.

    Parameters
    ----------
    kind:
        The equipment type.
    n_tools:
        Number of identical tools in the group.
    hours_per_week:
        Scheduled production hours per tool per week (≤ 168).
    ownership_cost_per_week_dollars:
        Depreciation + maintenance + floor space per tool per week;
        accrues regardless of utilization.
    """

    kind: EquipmentType
    n_tools: int
    hours_per_week: float = 144.0
    ownership_cost_per_week_dollars: float = 0.0

    def __post_init__(self) -> None:
        if self.n_tools < 1:
            raise ParameterError(f"n_tools must be >= 1, got {self.n_tools}")
        require_positive("hours_per_week", self.hours_per_week)
        if self.hours_per_week > 168.0:
            raise ParameterError(
                f"hours_per_week cannot exceed 168, got {self.hours_per_week}")
        require_nonnegative("ownership_cost_per_week_dollars",
                            self.ownership_cost_per_week_dollars)

    @property
    def capacity_hours_per_week(self) -> float:
        """Total tool-hours available per week in this group."""
        return self.n_tools * self.hours_per_week

    @property
    def weekly_ownership_cost_dollars(self) -> float:
        """Total ownership cost of the group per week."""
        return self.n_tools * self.ownership_cost_per_week_dollars


@dataclass(frozen=True)
class ProcessStep:
    """One step of a process flow: time demanded on one equipment type."""

    kind: EquipmentType
    hours_per_wafer: float
    name: str = ""

    def __post_init__(self) -> None:
        require_positive("hours_per_wafer", self.hours_per_wafer)


@dataclass(frozen=True)
class ProcessFlow:
    """A product's process flow: an ordered list of steps.

    ``demand_by_type`` aggregates the per-wafer hours by equipment type
    — the quantity the loading model consumes.
    """

    name: str
    steps: tuple[ProcessStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ParameterError(f"flow {self.name!r} has no steps")

    @property
    def n_steps(self) -> int:
        """Number of steps in the flow."""
        return len(self.steps)

    def demand_by_type(self) -> dict[EquipmentType, float]:
        """Per-wafer equipment-hours aggregated by type."""
        demand: dict[EquipmentType, float] = {}
        for step in self.steps:
            demand[step.kind] = demand.get(step.kind, 0.0) + step.hours_per_wafer
        return demand

    @classmethod
    def generic_cmos(cls, *, n_metal_layers: int = 2,
                     litho_hours_per_layer: float = 0.02,
                     name: str = "generic CMOS") -> "ProcessFlow":
        """A stylized CMOS flow scaled by metal-layer count.

        Step counts and per-wafer hours are representative of the
        paper's era (hundreds of steps, lithography the bottleneck);
        the absolute values matter less than their ratios, which drive
        the mix model's utilization imbalances.
        """
        if n_metal_layers < 1:
            raise ParameterError(
                f"n_metal_layers must be >= 1, got {n_metal_layers}")
        masks = 10 + 2 * n_metal_layers
        steps: list[ProcessStep] = []
        for i in range(masks):
            steps.append(ProcessStep(EquipmentType.LITHOGRAPHY,
                                     litho_hours_per_layer, f"litho-{i}"))
            steps.append(ProcessStep(EquipmentType.ETCH, 0.015, f"etch-{i}"))
            steps.append(ProcessStep(EquipmentType.CLEAN, 0.008, f"clean-{i}"))
            steps.append(ProcessStep(EquipmentType.METROLOGY, 0.005, f"metro-{i}"))
        for i in range(4):
            steps.append(ProcessStep(EquipmentType.IMPLANT, 0.01, f"implant-{i}"))
            steps.append(ProcessStep(EquipmentType.DIFFUSION, 0.05, f"diff-{i}"))
        for i in range(n_metal_layers + 2):
            steps.append(ProcessStep(EquipmentType.DEPOSITION, 0.03, f"dep-{i}"))
        return cls(name=name, steps=tuple(steps))


def utilization_by_type(equipment: tuple[Equipment, ...],
                        weekly_demand_hours: Mapping[EquipmentType, float],
                        ) -> dict[EquipmentType, float]:
    """Utilization fraction per equipment type for a weekly demand.

    Raises :class:`CapacityError` if any demanded type is missing from
    the equipment set or would require more than 100% utilization.
    """
    capacity: dict[EquipmentType, float] = {}
    for eq in equipment:
        capacity[eq.kind] = capacity.get(eq.kind, 0.0) + eq.capacity_hours_per_week
    util: dict[EquipmentType, float] = {k: 0.0 for k in capacity}
    for kind, demand in weekly_demand_hours.items():
        require_nonnegative(f"demand[{kind.value}]", demand)
        if demand == 0.0:
            continue
        if kind not in capacity:
            raise CapacityError(f"no {kind.value} equipment installed")
        u = demand / capacity[kind]
        if u > 1.0 + 1e-9:
            raise CapacityError(
                f"{kind.value} overloaded: demand {demand:.1f} h/wk exceeds "
                f"capacity {capacity[kind]:.1f} h/wk")
        util[kind] = min(u, 1.0)
    return util
