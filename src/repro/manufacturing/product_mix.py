"""Product mix and fabline utilization — Sec. III.A.d of the paper.

The paper's argument: a fabline sized for one high-volume product can
run every tool near full capacity, but a *multi-product, low-volume*
operation leaves some tools idle while others bottleneck — and idle
tools still accrue ownership cost, so the cost per wafer rises.  The
detailed study it cites [12] found the wafer-cost ratio between a
low-volume multi-product fab and a high-volume mono-product fab "may
reach as high value as 7".

Model: a :class:`FabLoad` couples an equipment set with a set of
product demands.  The fab's weekly ownership cost is fixed; wafer
throughput is limited by the bottleneck tool group; the ownership cost
per wafer is (fixed weekly cost) / (weekly wafer starts actually
achievable).  The mono-product reference sizes the same equipment set
perfectly for its single flow, so the ratio of the two is exactly the
utilization penalty the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import CapacityError, ParameterError
from ..units import require_positive
from .equipment import Equipment, EquipmentType, ProcessFlow, utilization_by_type


@dataclass(frozen=True)
class ProductDemand:
    """A product's weekly wafer-start demand with its process flow."""

    flow: ProcessFlow
    wafers_per_week: float

    def __post_init__(self) -> None:
        require_positive("wafers_per_week", self.wafers_per_week)

    def weekly_demand_hours(self) -> dict[EquipmentType, float]:
        """Equipment-hours per week this product demands, by type."""
        return {kind: hours * self.wafers_per_week
                for kind, hours in self.flow.demand_by_type().items()}


@dataclass(frozen=True)
class FabLoad:
    """An equipment set loaded with a set of product demands."""

    equipment: tuple[Equipment, ...]
    demands: tuple[ProductDemand, ...]

    def __post_init__(self) -> None:
        if not self.equipment:
            raise ParameterError("equipment set must be non-empty")
        if not self.demands:
            raise ParameterError("demand set must be non-empty")

    def total_demand_hours(self) -> dict[EquipmentType, float]:
        """Aggregate weekly equipment-hour demand over all products."""
        total: dict[EquipmentType, float] = {}
        for demand in self.demands:
            for kind, hours in demand.weekly_demand_hours().items():
                total[kind] = total.get(kind, 0.0) + hours
        return total

    def utilizations(self) -> dict[EquipmentType, float]:
        """Utilization per equipment type (raises on overload)."""
        return utilization_by_type(self.equipment, self.total_demand_hours())

    @property
    def weekly_wafer_starts(self) -> float:
        """Total wafers started per week across products."""
        return sum(d.wafers_per_week for d in self.demands)

    @property
    def weekly_ownership_cost_dollars(self) -> float:
        """Fixed weekly cost of the whole equipment set."""
        return sum(eq.weekly_ownership_cost_dollars for eq in self.equipment)

    def ownership_cost_per_wafer(self) -> float:
        """Ownership dollars charged to each started wafer.

        Validates feasibility first — an overloaded fab has no defined
        steady-state cost.
        """
        self.utilizations()
        return self.weekly_ownership_cost_dollars / self.weekly_wafer_starts

    def mean_utilization(self) -> float:
        """Capacity-weighted mean utilization over the equipment set."""
        utils = self.utilizations()
        cap_total = 0.0
        used_total = 0.0
        for eq in self.equipment:
            cap = eq.capacity_hours_per_week
            cap_total += cap
            used_total += cap * utils.get(eq.kind, 0.0)
        return used_total / cap_total


def size_equipment_for_flow(flow: ProcessFlow, wafers_per_week: float, *,
                            hours_per_week: float = 144.0,
                            ownership_cost_per_tool_week: dict[EquipmentType, float]
                            | None = None) -> tuple[Equipment, ...]:
    """The minimal integer tool set that sustains one flow at a volume.

    This is the paper's mono-product reference: "a fabline can be
    designed such that each piece of equipment is utilized nearly to
    its full theoretical capacity."  Integer tool counts mean small
    fabs still round up — itself a source of penalty at low volume.
    """
    require_positive("wafers_per_week", wafers_per_week)
    costs = ownership_cost_per_tool_week or {}
    equipment = []
    for kind, hours in sorted(flow.demand_by_type().items(),
                              key=lambda kv: kv[0].value):
        demand = hours * wafers_per_week
        n_tools = max(1, math.ceil(demand / hours_per_week - 1e-9))
        equipment.append(Equipment(
            kind=kind, n_tools=n_tools, hours_per_week=hours_per_week,
            ownership_cost_per_week_dollars=costs.get(kind, 50_000.0)))
    return tuple(equipment)


def mix_cost_ratio(flows: tuple[ProcessFlow, ...],
                   wafers_per_week_each: float,
                   reference_volume_per_week: float, *,
                   hours_per_week: float = 144.0) -> float:
    """Ownership-cost-per-wafer ratio: multi-product low-volume fab vs
    mono-product high-volume fab (the paper's "as high as 7" figure).

    The multi-product fab installs the union of tool sets needed for
    *each* flow at the (low) per-product volume; the reference fab is
    sized for a single flow (the first) at ``reference_volume_per_week``.
    Both use the same per-tool ownership costs, so everything but
    utilization cancels out of the ratio.
    """
    if not flows:
        raise ParameterError("flows must be non-empty")
    require_positive("wafers_per_week_each", wafers_per_week_each)
    require_positive("reference_volume_per_week", reference_volume_per_week)

    # Multi-product fab: union of per-flow requirements (each flow may hit
    # its own bottleneck tool type; the fab must cover the max).
    per_type_tools: dict[EquipmentType, int] = {}
    for flow in flows:
        for eq in size_equipment_for_flow(flow, wafers_per_week_each,
                                          hours_per_week=hours_per_week):
            per_type_tools[eq.kind] = max(per_type_tools.get(eq.kind, 0),
                                          eq.n_tools)
    # Aggregate demand may exceed any single flow's tool count; top up.
    demands = tuple(ProductDemand(flow=f, wafers_per_week=wafers_per_week_each)
                    for f in flows)
    total_demand: dict[EquipmentType, float] = {}
    for d in demands:
        for kind, hours in d.weekly_demand_hours().items():
            total_demand[kind] = total_demand.get(kind, 0.0) + hours
    for kind, hours in total_demand.items():
        needed = max(1, math.ceil(hours / hours_per_week - 1e-9))
        per_type_tools[kind] = max(per_type_tools.get(kind, 0), needed)

    multi_equipment = tuple(
        Equipment(kind=kind, n_tools=n, hours_per_week=hours_per_week,
                  ownership_cost_per_week_dollars=50_000.0)
        for kind, n in sorted(per_type_tools.items(), key=lambda kv: kv[0].value))
    multi = FabLoad(equipment=multi_equipment, demands=demands)

    reference_equipment = size_equipment_for_flow(
        flows[0], reference_volume_per_week, hours_per_week=hours_per_week)
    mono = FabLoad(
        equipment=reference_equipment,
        demands=(ProductDemand(flow=flows[0],
                               wafers_per_week=reference_volume_per_week),))

    return multi.ownership_cost_per_wafer() / mono.ownership_cost_per_wafer()
