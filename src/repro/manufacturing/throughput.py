"""Fabline dynamics: cycle time, WIP and the cost of queueing.

Sec. V's Phase-2 survival list includes "CIM" and "flexible fabline
control", and the product-mix discussion notes that high-throughput
equipment "indirectly leads to very low utilization levels" in diverse
operations.  The mechanism is queueing: pushing a tool group toward
full utilization explodes cycle time (the classic hockey stick), and
cycle time is money — WIP carrying cost, slower yield learning (fewer
learning cycles per month), and time-to-market.

Model: each equipment group is an M/M/c queue; a process flow visits
groups in sequence (re-entrant visits aggregated per group).  Steady-
state cycle time per group uses the Erlang-C waiting formula; fab cycle
time is the sum over visits plus raw process time.  :class:`CycleTimeCost`
prices the result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..errors import CapacityError, ParameterError
from ..units import require_fraction, require_nonnegative, require_positive
from .equipment import Equipment, EquipmentType, ProcessFlow


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival waits (M/M/c).

    ``offered_load`` is a = λ/µ in Erlangs; requires a < servers for
    stability.
    """
    if servers < 1:
        raise ParameterError(f"servers must be >= 1, got {servers}")
    require_nonnegative("offered_load", offered_load)
    if offered_load >= servers:
        raise CapacityError(
            f"offered load {offered_load:.2f} Erlangs >= {servers} servers; "
            "queue is unstable")
    if offered_load == 0.0:
        return 0.0
    # Iterative Erlang-B, then convert to Erlang-C (numerically stable).
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mmc_wait_hours(servers: int, arrival_per_hour: float,
                   service_hours: float) -> float:
    """Mean queueing delay (excluding service) of an M/M/c station."""
    require_positive("arrival_per_hour", arrival_per_hour)
    require_positive("service_hours", service_hours)
    offered = arrival_per_hour * service_hours
    p_wait = erlang_c(servers, offered)
    mu = 1.0 / service_hours
    return p_wait / (servers * mu - arrival_per_hour)


@dataclass(frozen=True)
class StationAnalysis:
    """Steady-state numbers for one equipment group under load."""

    kind: EquipmentType
    servers: int
    utilization: float
    wait_hours_per_visit: float
    service_hours_per_visit: float

    @property
    def cycle_hours_per_visit(self) -> float:
        """Queueing plus processing per visit."""
        return self.wait_hours_per_visit + self.service_hours_per_visit

    @property
    def queueing_multiplier(self) -> float:
        """Cycle time over raw process time (the x-factor)."""
        return self.cycle_hours_per_visit / self.service_hours_per_visit


@dataclass(frozen=True)
class FabDynamics:
    """A flow running through an equipment set at a start rate.

    Per-group service time per *visit* is the flow's total demand on
    that group divided evenly over ``visits_per_group`` visits —
    re-entrant flows hit lithography dozens of times; the aggregation
    keeps the queueing first-order while preserving total load.
    """

    equipment: tuple[Equipment, ...]
    flow: ProcessFlow
    wafer_starts_per_hour: float
    visits_per_group: int = 10

    def __post_init__(self) -> None:
        if not self.equipment:
            raise ParameterError("equipment set must be non-empty")
        require_positive("wafer_starts_per_hour", self.wafer_starts_per_hour)
        if self.visits_per_group < 1:
            raise ParameterError("visits_per_group must be >= 1")

    def _servers(self) -> dict[EquipmentType, int]:
        servers: dict[EquipmentType, int] = {}
        for eq in self.equipment:
            servers[eq.kind] = servers.get(eq.kind, 0) + eq.n_tools
        return servers

    def stations(self) -> list[StationAnalysis]:
        """Per-group steady-state analysis (raises on instability)."""
        servers = self._servers()
        out = []
        for kind, hours_per_wafer in sorted(
                self.flow.demand_by_type().items(), key=lambda kv: kv[0].value):
            if kind not in servers:
                raise CapacityError(f"no {kind.value} equipment installed")
            c = servers[kind]
            visits = self.visits_per_group
            service = hours_per_wafer / visits
            arrivals = self.wafer_starts_per_hour * visits
            offered = arrivals * service
            if offered >= c:
                raise CapacityError(
                    f"{kind.value}: offered load {offered:.2f} >= {c} tools")
            wait = mmc_wait_hours(c, arrivals, service)
            out.append(StationAnalysis(
                kind=kind, servers=c, utilization=offered / c,
                wait_hours_per_visit=wait,
                service_hours_per_visit=service))
        return out

    def cycle_time_hours(self) -> float:
        """Fab cycle time: sum of (wait + service) over all visits."""
        return sum(s.cycle_hours_per_visit * self.visits_per_group
                   for s in self.stations())

    def raw_process_hours(self) -> float:
        """Theoretical process time with zero queueing."""
        return sum(self.flow.demand_by_type().values())

    def x_factor(self) -> float:
        """Fab-level cycle time over raw process time (industry KPI;
        well-run fabs live between 2 and 5)."""
        return self.cycle_time_hours() / self.raw_process_hours()

    def wip_wafers(self) -> float:
        """Little's law: WIP = start rate × cycle time."""
        return self.wafer_starts_per_hour * self.cycle_time_hours()

    def bottleneck(self) -> StationAnalysis:
        """The most utilized station."""
        return max(self.stations(), key=lambda s: s.utilization)


@dataclass(frozen=True)
class CycleTimeCost:
    """Dollars per wafer attributable to time in the line.

    ``wip_value_dollars`` is the carrying value of a wafer in process
    (materials + accumulated processing); ``annual_carrying_rate`` the
    cost of capital plus obsolescence.  ``revenue_decay_per_month`` adds
    the time-to-market term: each month of cycle time forfeits that
    fraction of a wafer's revenue (price erosion — see
    :class:`~repro.core.pricing.LearningCurvePrice`).
    """

    wip_value_dollars: float = 1000.0
    annual_carrying_rate: float = 0.15
    revenue_decay_per_month: float = 0.02
    revenue_per_wafer_dollars: float = 3000.0

    def __post_init__(self) -> None:
        require_positive("wip_value_dollars", self.wip_value_dollars)
        require_fraction("annual_carrying_rate", self.annual_carrying_rate,
                         inclusive_high=False)
        require_fraction("revenue_decay_per_month",
                         self.revenue_decay_per_month, inclusive_high=False)
        require_positive("revenue_per_wafer_dollars",
                         self.revenue_per_wafer_dollars)

    def cost_per_wafer(self, cycle_time_hours: float) -> float:
        """Carrying cost plus price-erosion loss for one wafer."""
        require_nonnegative("cycle_time_hours", cycle_time_hours)
        years = cycle_time_hours / (24.0 * 365.0)
        carrying = self.wip_value_dollars * self.annual_carrying_rate * years
        months = cycle_time_hours / (24.0 * 30.0)
        erosion = self.revenue_per_wafer_dollars \
            * (1.0 - (1.0 - self.revenue_decay_per_month) ** months)
        return carrying + erosion
