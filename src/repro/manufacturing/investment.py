"""Fab investment analysis — Phase 1's "invest-now-to-dominate-later".

Sec. V: the high-volume winners "aim at smaller feature size and higher
volume regardless of the required investment levels", betting a
billion-dollar fab against future margins; the niche players cannot.
This module prices that bet: a :class:`FabInvestment` is the fab's
capital outlay against a stream of wafer margins, with NPV, IRR
(bisection), discounted payback, and the margin floor at which the
megafab stops clearing its hurdle rate — the quantity Phase 2's margin
compression attacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConvergenceError, ParameterError
from ..units import require_fraction, require_positive


def npv(cash_flows: Sequence[float], rate: float) -> float:
    """Net present value of yearly cash flows (index 0 = now)."""
    if not cash_flows:
        raise ParameterError("cash_flows must be non-empty")
    if rate <= -1.0:
        raise ParameterError(f"rate must exceed -100%, got {rate}")
    return sum(cf / (1.0 + rate) ** t for t, cf in enumerate(cash_flows))


def irr(cash_flows: Sequence[float], *, lo: float = -0.99, hi: float = 10.0,
        tol: float = 1e-9) -> float:
    """Internal rate of return by bisection.

    Requires a sign change of NPV over [lo, hi]; conventional projects
    (negative outlay, positive returns) have exactly one root there.
    """
    f_lo = npv(cash_flows, lo)
    f_hi = npv(cash_flows, hi)
    if f_lo * f_hi > 0.0:
        raise ConvergenceError(
            "IRR not bracketed: NPV does not change sign on the interval "
            f"({f_lo:.3g} at {lo:.2%}, {f_hi:.3g} at {hi:.2%})")
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        f_mid = npv(cash_flows, mid)
        if f_mid == 0.0:
            return mid
        if f_lo * f_mid < 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class FabInvestment:
    """A fab build priced against its wafer-margin stream.

    Parameters
    ----------
    construction_cost_dollars:
        Upfront capital (year 0).
    wafers_per_year:
        Steady-state output once ramped.
    margin_per_wafer_dollars:
        Price minus variable cost per wafer at steady state.
    ramp_years:
        Linear output ramp: year 1 ships ``1/ramp_years`` of steady
        state, year ``ramp_years`` ships full rate.
    life_years:
        Productive life after which output (and the model) stops.
    margin_erosion_per_year:
        Fractional yearly decline of the wafer margin (competition /
        price learning); 0 keeps it flat.
    """

    construction_cost_dollars: float
    wafers_per_year: float
    margin_per_wafer_dollars: float
    ramp_years: int = 2
    life_years: int = 8
    margin_erosion_per_year: float = 0.0

    def __post_init__(self) -> None:
        require_positive("construction_cost_dollars",
                         self.construction_cost_dollars)
        require_positive("wafers_per_year", self.wafers_per_year)
        require_positive("margin_per_wafer_dollars",
                         self.margin_per_wafer_dollars)
        if self.ramp_years < 1:
            raise ParameterError("ramp_years must be >= 1")
        if self.life_years < self.ramp_years:
            raise ParameterError("life_years must be >= ramp_years")
        require_fraction("margin_erosion_per_year",
                         self.margin_erosion_per_year, inclusive_high=False)

    def cash_flows(self) -> list[float]:
        """Yearly cash flows: [-capital, year-1 margin, ...]."""
        flows = [-self.construction_cost_dollars]
        for year in range(1, self.life_years + 1):
            utilization = min(year / self.ramp_years, 1.0)
            margin = self.margin_per_wafer_dollars \
                * (1.0 - self.margin_erosion_per_year) ** (year - 1)
            flows.append(self.wafers_per_year * utilization * margin)
        return flows

    def npv(self, discount_rate: float) -> float:
        """NPV at a hurdle rate."""
        return npv(self.cash_flows(), discount_rate)

    def irr(self) -> float:
        """Internal rate of return of the build."""
        return irr(self.cash_flows())

    def discounted_payback_years(self, discount_rate: float) -> int | None:
        """First year cumulative discounted cash turns positive, or None."""
        if discount_rate <= -1.0:
            raise ParameterError("discount_rate must exceed -100%")
        cumulative = 0.0
        for t, cf in enumerate(self.cash_flows()):
            cumulative += cf / (1.0 + discount_rate) ** t
            if t > 0 and cumulative >= 0.0:
                return t
        return None

    def breakeven_margin(self, discount_rate: float, *,
                         tol: float = 1e-6) -> float:
        """Wafer margin at which NPV is exactly zero at the hurdle rate.

        The floor Phase-2 margin compression pushes toward: below it the
        megafab never should have been built.
        """
        require_positive("tol", tol)
        lo, hi = tol, self.margin_per_wafer_dollars
        # Expand hi until NPV positive (margin scales cash linearly).
        def npv_at(margin: float) -> float:
            trial = FabInvestment(
                construction_cost_dollars=self.construction_cost_dollars,
                wafers_per_year=self.wafers_per_year,
                margin_per_wafer_dollars=margin,
                ramp_years=self.ramp_years,
                life_years=self.life_years,
                margin_erosion_per_year=self.margin_erosion_per_year)
            return trial.npv(discount_rate)

        while npv_at(hi) < 0.0:
            hi *= 2.0
            if hi > 1e9:
                raise ConvergenceError("no breakeven margin below $1e9")
        while hi - lo > tol * max(hi, 1.0):
            mid = 0.5 * (lo + hi)
            if npv_at(mid) < 0.0:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def compare_strategies(megafab: FabInvestment, niche: FabInvestment,
                       discount_rate: float) -> dict[str, float]:
    """Phase-1 strategy comparison at a common hurdle rate."""
    return {
        "megafab_npv": megafab.npv(discount_rate),
        "niche_npv": niche.npv(discount_rate),
        "megafab_irr": megafab.irr(),
        "niche_irr": niche.irr(),
    }
