"""Manufacturing volume economics — eq. (2) of the paper.

Total cost per wafer splits into a variable ("true") cost C'_w and a
fixed overhead C_over spread over the volume V:

.. math:: C_w(V) = C'_w + C_{over} / V

The paper notes overhead spans $100k (ASIC) to $100M (µP) [14], making
this term decisive for low-volume products.  :class:`VolumeCostCurve`
wraps the relation with the derived quantities designers ask for:
cost at volume, overhead share, volume needed to reach a target cost,
and the volume at which two alternatives (e.g. own-fab vs foundry)
break even.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_nonnegative, require_positive


@dataclass(frozen=True)
class VolumeCostCurve:
    """Eq. (2) with its elementary analytics.

    Parameters
    ----------
    pure_cost_dollars:
        C'_w — variable manufacturing cost per wafer.
    overhead_dollars:
        C_over — fixed cost (R&D, NRE, management) to amortize.
    """

    pure_cost_dollars: float
    overhead_dollars: float = 0.0

    def __post_init__(self) -> None:
        require_positive("pure_cost_dollars", self.pure_cost_dollars)
        require_nonnegative("overhead_dollars", self.overhead_dollars)

    def cost(self, volume_wafers: float) -> float:
        """C_w(V) in dollars per wafer."""
        require_positive("volume_wafers", volume_wafers)
        return self.pure_cost_dollars + self.overhead_dollars / volume_wafers

    def overhead_share(self, volume_wafers: float) -> float:
        """Fraction of the wafer cost that is amortized overhead."""
        total = self.cost(volume_wafers)
        return (self.overhead_dollars / volume_wafers) / total

    def volume_for_cost(self, target_cost_dollars: float) -> float:
        """Volume at which C_w(V) reaches a target; ParameterError if the
        target is at or below the pure cost (unreachable at any volume)."""
        require_positive("target_cost_dollars", target_cost_dollars)
        margin = target_cost_dollars - self.pure_cost_dollars
        if margin <= 0.0:
            raise ParameterError(
                f"target {target_cost_dollars} is not above the pure cost "
                f"{self.pure_cost_dollars}; unreachable at any volume")
        if self.overhead_dollars == 0.0:
            raise ParameterError(
                "no overhead to amortize: cost is flat in volume")
        return self.overhead_dollars / margin

    def breakeven_volume(self, other: "VolumeCostCurve") -> float:
        """Volume at which this curve and ``other`` cost the same.

        The classic make-vs-buy question: a high-overhead/low-variable
        option (own fab) against a low-overhead/high-variable one
        (foundry).  Raises if the curves never cross at positive volume.
        """
        d_pure = other.pure_cost_dollars - self.pure_cost_dollars
        d_over = self.overhead_dollars - other.overhead_dollars
        if d_pure == 0.0 and d_over == 0.0:
            raise ParameterError("curves are identical; breakeven undefined")
        if d_pure == 0.0 or d_over == 0.0 or (d_over / d_pure) <= 0.0:
            raise ParameterError(
                "curves do not cross at any positive volume "
                "(one dominates the other)")
        return d_over / d_pure
