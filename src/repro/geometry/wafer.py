"""Dies-per-wafer counting: eq. (4) and cross-validating alternatives.

The paper computes the number of complete dies on a circular wafer with
a row-by-row formula credited to Ferris-Prabhu [20]:

.. math::

    N_{ch} = \\sum_{j=0}^{\\lfloor 2R_w/b \\rfloor - 1}
             \\Big\\lfloor \\tfrac{2}{a}\\,\\min(R_j, R_{j+1}) \\Big\\rfloor,
    \\qquad R_j = \\sqrt{R_w^2 - (j\\,b - R_w)^2}

i.e. the wafer is sliced into horizontal rows of die height ``b``;
each row holds as many dies of width ``a`` as fit inside the chord of
the circle at the row's narrower end.  (The supplied paper text prints
``j·a·b`` inside the offset term; dimensional analysis requires ``j·b``
— see DESIGN.md, deviation 2.)

Three independent counts are provided so they can cross-check each
other in tests:

* :func:`dies_per_wafer_maly` — the paper's row formula, exactly as above.
* :func:`dies_per_wafer_exact` — place an axis-aligned grid and count
  rectangles whose four corners all lie inside the circle, optionally
  searching over the grid phase.
* :func:`dies_per_wafer_area_approx` — closed-form area approximations
  (gross, Ferris-Prabhu edge-corrected, and the de-facto-standard
  SEMI/industry variant) useful for fast sweeps and sanity bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from ..errors import GeometryError, ParameterError
from ..units import require_nonnegative, require_positive, wafer_area_cm2
from .die import Die

ApproxKind = Literal["gross", "ferris-prabhu", "industry"]


@dataclass(frozen=True)
class Wafer:
    """A circular wafer.

    Parameters
    ----------
    radius_cm:
        Physical wafer radius R_w in centimeters.  The paper's scenarios
        use 7.5 cm (a "6 inch" wafer, rounded) and 10 cm (8 inch).
    edge_exclusion_cm:
        Width of the annular edge region unusable for product dies
        (handling damage, process non-uniformity).  Defaults to zero to
        match the paper's idealized eq. (4).
    """

    radius_cm: float
    edge_exclusion_cm: float = 0.0

    def __post_init__(self) -> None:
        require_positive("radius_cm", self.radius_cm)
        require_nonnegative("edge_exclusion_cm", self.edge_exclusion_cm)
        if self.edge_exclusion_cm >= self.radius_cm:
            raise GeometryError(
                f"edge exclusion {self.edge_exclusion_cm} cm consumes the whole "
                f"wafer of radius {self.radius_cm} cm")

    @classmethod
    def from_diameter_inches(cls, diameter_inches: float, *,
                             edge_exclusion_cm: float = 0.0) -> "Wafer":
        """Wafer from a nominal diameter in inches (6, 8, 12, ...)."""
        require_positive("diameter_inches", diameter_inches)
        return cls(radius_cm=diameter_inches * 2.54 / 2.0,
                   edge_exclusion_cm=edge_exclusion_cm)

    @property
    def usable_radius_cm(self) -> float:
        """Radius of the region available for product dies."""
        return self.radius_cm - self.edge_exclusion_cm

    @property
    def area_cm2(self) -> float:
        """Gross wafer area in cm²."""
        return wafer_area_cm2(self.radius_cm)

    @property
    def usable_area_cm2(self) -> float:
        """Area inside the edge exclusion in cm²."""
        return wafer_area_cm2(self.usable_radius_cm)

    def dies(self, die: Die, *, method: str = "maly") -> int:
        """Count complete dies on this wafer with the chosen method.

        ``method`` is one of ``"maly"`` (eq. 4), ``"exact"`` (grid
        placement with phase search), or one of the approximation kinds
        accepted by :func:`dies_per_wafer_area_approx` (whose float
        result is floored here).
        """
        if method == "maly":
            return dies_per_wafer_maly(self, die)
        if method == "exact":
            return dies_per_wafer_exact(self, die, optimize_offset=True)
        return int(dies_per_wafer_area_approx(self, die, kind=method))  # type: ignore[arg-type]


def dies_per_wafer_maly(wafer: Wafer, die: Die) -> int:
    """Eq. (4): row-by-row die count.

    The wafer is cut into ``floor(2R/b)`` horizontal rows of height
    ``b`` starting at the bottom of the circle; row ``j`` spans
    vertical offsets ``[j·b, (j+1)·b]`` measured from the bottom.  The
    half-chord at offset ``y`` is ``R_j = sqrt(R² − (y − R)²)``, and a
    row holds ``floor(2·min(R_j, R_{j+1}) / a)`` complete dies.

    Scribe lanes, if present on the die, are folded into the stepping
    pitch (a die's *pitch* must fit, its active area is irrelevant to
    packing).  Edge exclusion shrinks the effective radius.
    """
    radius = wafer.usable_radius_cm
    a = die.pitch_x_cm
    b = die.pitch_y_cm
    if die.width_cm > 2 * radius or die.height_cm > 2 * radius:
        return 0

    n_rows = math.floor(2.0 * radius / b)

    def half_chord(j: int) -> float:
        offset = j * b - radius
        inside = radius * radius - offset * offset
        return math.sqrt(inside) if inside > 0.0 else 0.0

    total = 0
    for j in range(n_rows):
        chord = min(half_chord(j), half_chord(j + 1))
        total += math.floor(2.0 * chord / a)
    return total


def dies_per_wafer_exact(wafer: Wafer, die: Die, *,
                         offset_x: float = 0.0, offset_y: float = 0.0,
                         optimize_offset: bool = False,
                         offset_steps: int = 8) -> int:
    """Count dies by explicit grid placement.

    A rectangular grid of pitch ``(pitch_x, pitch_y)`` is laid over the
    wafer with its origin displaced by ``(offset_x, offset_y)`` from the
    wafer center, and every cell whose four corners lie within the
    usable radius is counted.  With ``optimize_offset=True`` the phase
    is searched on an ``offset_steps × offset_steps`` sub-pitch lattice
    and the best count returned — this is how steppers actually place
    reticle grids, and it upper-bounds the fixed-phase counts.
    """
    radius = wafer.usable_radius_cm
    px, py = die.pitch_x_cm, die.pitch_y_cm
    w, h = die.width_cm, die.height_cm
    if math.hypot(w, h) > 2 * radius:
        return 0

    def count(ox: float, oy: float) -> int:
        # Candidate cell indices: cells whose x-span may intersect the circle.
        i_lo = math.floor((-radius - ox) / px) - 1
        i_hi = math.ceil((radius - ox) / px) + 1
        j_lo = math.floor((-radius - oy) / py) - 1
        j_hi = math.ceil((radius - oy) / py) + 1
        r2 = radius * radius
        n = 0
        for j in range(j_lo, j_hi + 1):
            y0 = oy + j * py
            y1 = y0 + h
            # The farthest-from-center y of the cell dominates the corner test.
            ymax2 = max(y0 * y0, y1 * y1)
            if ymax2 > r2:
                continue
            # x extent allowed: both x0 and x0+w within the chord at ymax.
            half = math.sqrt(r2 - ymax2)
            for i in range(i_lo, i_hi + 1):
                x0 = ox + i * px
                x1 = x0 + w
                if -half <= x0 and x1 <= half:
                    n += 1
        return n

    if not optimize_offset:
        return count(offset_x, offset_y)
    return best_grid_offset(wafer, die, steps=offset_steps)[2]


def dies_per_wafer_area_approx(wafer: Wafer, die: Die, *,
                               kind: ApproxKind = "industry") -> float:
    """Closed-form approximations of the die count (returns a float).

    ``kind`` selects the correction for partial dies at the wafer edge:

    * ``"gross"`` — no correction: ``π R² / A_die``.  An upper bound.
    * ``"ferris-prabhu"`` — Ferris-Prabhu's effective-radius form
      ``π (R − s/2)² / A_die`` with ``s = sqrt(A_die)``, from the same
      technical report the paper cites [20].
    * ``"industry"`` — the widely used first-order edge correction
      ``π R²/A − π·2R/sqrt(2A)`` (circumference divided by the die
      diagonal-ish pitch), accurate to a few percent for dies much
      smaller than the wafer.
    """
    radius = wafer.usable_radius_cm
    area = die.pitch_x_cm * die.pitch_y_cm
    gross = math.pi * radius * radius / area
    if kind == "gross":
        return gross
    if kind == "ferris-prabhu":
        side = math.sqrt(area)
        effective = max(radius - side / 2.0, 0.0)
        return math.pi * effective * effective / area
    if kind == "industry":
        return max(gross - math.pi * 2.0 * radius / math.sqrt(2.0 * area), 0.0)
    raise ParameterError(f"unknown approximation kind {kind!r}")


def best_grid_offset(wafer: Wafer, die: Die, *, steps: int = 8) -> tuple[float, float, int]:
    """Search grid phases and return ``(offset_x, offset_y, count)`` of the best.

    Exposed separately from :func:`dies_per_wafer_exact` for callers
    that want the winning placement itself (e.g. to draw a wafer map).
    """
    px, py = die.pitch_x_cm, die.pitch_y_cm
    best = (0.0, 0.0, -1)
    for si in range(steps):
        for sj in range(steps):
            ox, oy = si * px / steps, sj * py / steps
            n = dies_per_wafer_exact(wafer, die, offset_x=ox, offset_y=oy)
            if n > best[2]:
                best = (ox, oy, n)
    return best
