"""Die packing optimization beyond the paper's eq. (4).

Eq. (4) counts dies for a *given* rectangle.  Real products have some
freedom the cost optimizer can exploit:

* **Aspect ratio** — a fixed die area packs differently at different
  width/height ratios (chords of the circle favor moderate elongation
  at the edges).  :func:`best_aspect_ratio` sweeps it.
* **Multi-project wafers (MPW)** — the paper's Phase-2 niche players
  ("renting superfluous fabline capacity") share wafers across
  products.  :func:`multi_project_allocation` splits a wafer's rows
  among several dies proportionally to demand and prices each project's
  silicon share.

Both build strictly on the eq.-(4) machinery in
:mod:`repro.geometry.wafer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import GeometryError, ParameterError
from ..units import require_positive
from .die import Die
from .wafer import Wafer, dies_per_wafer_maly


def best_aspect_ratio(wafer: Wafer, die_area_cm2: float, *,
                      ratio_lo: float = 0.4, ratio_hi: float = 2.5,
                      n_ratios: int = 43,
                      scribe_cm: float = 0.0) -> tuple[float, int]:
    """Sweep width/height ratios at fixed area; return (best ratio, count).

    The count function is symmetric-ish but not exactly (rows run
    horizontally in eq. 4), so the sweep covers both elongations.
    """
    from ..batch.engine import dies_per_wafer_batch

    require_positive("die_area_cm2", die_area_cm2)
    if not 0.0 < ratio_lo < ratio_hi:
        raise ParameterError("need 0 < ratio_lo < ratio_hi")
    if n_ratios < 3:
        raise ParameterError("n_ratios must be >= 3")
    # Ratios and dimensions come from the same scalar arithmetic as the
    # reference loop; only the eq.-(4) row reduction is batched.
    dies = []
    for k in range(n_ratios):
        ratio = ratio_lo * (ratio_hi / ratio_lo) ** (k / (n_ratios - 1))
        die = Die.from_area(die_area_cm2, aspect_ratio=ratio,
                            scribe_cm=scribe_cm)
        if die.diagonal_cm > 2.0 * wafer.usable_radius_cm:
            continue
        dies.append((ratio, die))
    if not dies:
        raise GeometryError(
            f"no aspect ratio fits area {die_area_cm2} cm2 on this wafer")
    widths = [die.width_cm for _, die in dies]
    heights = [die.height_cm for _, die in dies]
    counts = dies_per_wafer_batch(wafer, widths, heights,
                                  scribe_cm=scribe_cm)
    k_best = int(counts.argmax())
    return dies[k_best][0], int(counts[k_best])


def aspect_ratio_penalty(wafer: Wafer, die_area_cm2: float,
                         aspect_ratio: float) -> float:
    """Fractional die-count loss of a given ratio vs. the best ratio.

    0.0 means the ratio is optimal; 0.08 means 8% fewer dies — i.e. 8%
    more cost per transistor at equal yield, a lever the paper's
    design-side cost optimization can pull for free.
    """
    require_positive("aspect_ratio", aspect_ratio)
    _, best_count = best_aspect_ratio(wafer, die_area_cm2)
    die = Die.from_area(die_area_cm2, aspect_ratio=aspect_ratio)
    count = dies_per_wafer_maly(wafer, die)
    # The sweep is finite; if the queried ratio happens to beat every
    # sweep point, it IS the best known ratio (penalty zero), never a
    # negative penalty.
    best_count = max(best_count, count)
    if best_count == 0:
        raise GeometryError("die does not fit the wafer at any ratio")
    return 1.0 - count / best_count


@dataclass(frozen=True)
class ProjectRequest:
    """One MPW project: its die and the number of dies it wants."""

    name: str
    die: Die
    dies_wanted: int

    def __post_init__(self) -> None:
        if self.dies_wanted < 1:
            raise ParameterError(
                f"project {self.name!r} must want at least one die")


@dataclass(frozen=True)
class ProjectAllocation:
    """One project's share of an MPW run."""

    request: ProjectRequest
    rows_assigned: int
    dies_obtained: int
    silicon_share: float
    cost_share_dollars: float

    @property
    def satisfied(self) -> bool:
        """Did the project get at least the dies it asked for?"""
        return self.dies_obtained >= self.request.dies_wanted


def multi_project_allocation(wafer: Wafer,
                             requests: tuple[ProjectRequest, ...],
                             wafer_cost_dollars: float,
                             ) -> list[ProjectAllocation]:
    """Split a wafer's horizontal rows among projects; price each share.

    Rows (of each project's own die height) are assigned bottom-up,
    greedily to the most under-served project, until every request is
    met or the wafer is exhausted.  Costs are split by silicon area
    actually granted — the fair-share rule an MPW broker would use.
    """
    if not requests:
        raise ParameterError("requests must be non-empty")
    require_positive("wafer_cost_dollars", wafer_cost_dollars)

    radius = wafer.usable_radius_cm
    remaining_height = 2.0 * radius
    offset = 0.0  # height consumed from the bottom of the wafer

    obtained = {req.name: 0 for req in requests}
    rows = {req.name: 0 for req in requests}

    def chord_at(y: float) -> float:
        inside = radius * radius - (y - radius) ** 2
        return math.sqrt(inside) if inside > 0 else 0.0

    def dies_in_row(die: Die, y0: float) -> int:
        chord = min(chord_at(y0), chord_at(y0 + die.pitch_y_cm))
        return math.floor(2.0 * chord / die.pitch_x_cm)

    while remaining_height > 0.0:
        # Most under-served project whose row still fits.
        candidates = [r for r in requests
                      if obtained[r.name] < r.dies_wanted
                      and r.die.pitch_y_cm <= remaining_height]
        if not candidates:
            break
        worst = min(candidates,
                    key=lambda r: obtained[r.name] / r.dies_wanted)
        got = dies_in_row(worst.die, offset)
        obtained[worst.name] += got
        rows[worst.name] += 1
        offset += worst.die.pitch_y_cm
        remaining_height -= worst.die.pitch_y_cm
        if got == 0 and offset > radius:
            break  # upper cap too narrow for this die; stop

    total_area = sum(obtained[r.name] * r.die.area_cm2 for r in requests)
    allocations = []
    for req in requests:
        area = obtained[req.name] * req.die.area_cm2
        share = area / total_area if total_area > 0 else 0.0
        allocations.append(ProjectAllocation(
            request=req,
            rows_assigned=rows[req.name],
            dies_obtained=obtained[req.name],
            silicon_share=share,
            cost_share_dollars=share * wafer_cost_dollars))
    return allocations


def mpw_cost_per_die(allocation: ProjectAllocation) -> float:
    """A project's effective cost per die on the shared wafer."""
    if allocation.dies_obtained == 0:
        raise ParameterError(
            f"project {allocation.request.name!r} obtained no dies")
    return allocation.cost_share_dollars / allocation.dies_obtained
