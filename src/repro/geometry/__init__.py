"""Wafer and die geometry: the substrate behind eq. (4) of the paper.

Public surface:

* :class:`~repro.geometry.die.Die` — a rectangular die with optional
  scribe-lane allowance.
* :class:`~repro.geometry.wafer.Wafer` — a circular wafer with optional
  edge exclusion.
* :func:`~repro.geometry.wafer.dies_per_wafer_maly` — eq. (4), the
  row-by-row count the paper uses.
* :func:`~repro.geometry.wafer.dies_per_wafer_exact` — exact grid
  placement by rectangle-in-circle testing.
* :func:`~repro.geometry.wafer.dies_per_wafer_area_approx` — the
  Ferris-Prabhu family of area-based approximations.
* :func:`~repro.geometry.wafer.best_grid_offset` — optimal grid phase.
"""

from .die import Die
from .wafer import (
    Wafer,
    dies_per_wafer_area_approx,
    dies_per_wafer_exact,
    dies_per_wafer_maly,
    best_grid_offset,
)
from .packing import (
    ProjectAllocation,
    ProjectRequest,
    aspect_ratio_penalty,
    best_aspect_ratio,
    multi_project_allocation,
    mpw_cost_per_die,
)

__all__ = [
    "Die",
    "Wafer",
    "dies_per_wafer_maly",
    "dies_per_wafer_exact",
    "dies_per_wafer_area_approx",
    "best_grid_offset",
    "best_aspect_ratio",
    "aspect_ratio_penalty",
    "ProjectRequest",
    "ProjectAllocation",
    "multi_project_allocation",
    "mpw_cost_per_die",
]
