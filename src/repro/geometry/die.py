"""Rectangular die geometry.

The paper treats a die as an ``a × b`` rectangle (eq. 4) and in its
numerical scenarios always uses square dies whose area follows from the
transistor count: ``A_ch = N_tr · d_d · λ²`` (eq. 5, inverted).  This
module provides the die abstraction shared by the geometry and cost
layers, including the scribe-lane (saw kerf) allowance real fabs add
between dies — the paper folds this into its die dimensions, we expose
it explicitly and default it to zero so the paper's numbers reproduce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import GeometryError
from ..units import cm2_to_mm2, require_nonnegative, require_positive, um2_to_cm2


@dataclass(frozen=True)
class Die:
    """A rectangular die.

    Parameters
    ----------
    width_cm:
        Die width ``a`` in centimeters (the dimension laid out along a
        wafer row in eq. 4).
    height_cm:
        Die height ``b`` in centimeters.
    scribe_cm:
        Scribe-lane (saw street) width in centimeters, added on each
        side of the die when stepping the grid.  Zero by default, which
        matches the paper's idealized eq. (4).
    """

    width_cm: float
    height_cm: float
    scribe_cm: float = 0.0

    def __post_init__(self) -> None:
        require_positive("width_cm", self.width_cm)
        require_positive("height_cm", self.height_cm)
        require_nonnegative("scribe_cm", self.scribe_cm)

    @classmethod
    def square(cls, side_cm: float, *, scribe_cm: float = 0.0) -> "Die":
        """A square die of the given side length in centimeters."""
        return cls(width_cm=side_cm, height_cm=side_cm, scribe_cm=scribe_cm)

    @classmethod
    def from_area(cls, area_cm2: float, *, aspect_ratio: float = 1.0,
                  scribe_cm: float = 0.0) -> "Die":
        """Build a die of the given area and width/height aspect ratio.

        ``aspect_ratio`` is ``width / height``; 1.0 gives a square die,
        which is what all of the paper's scenarios use.
        """
        require_positive("area_cm2", area_cm2)
        require_positive("aspect_ratio", aspect_ratio)
        height = math.sqrt(area_cm2 / aspect_ratio)
        width = area_cm2 / height
        return cls(width_cm=width, height_cm=height, scribe_cm=scribe_cm)

    @classmethod
    def from_transistor_count(cls, n_transistors: float, design_density: float,
                              feature_size_um: float, *, aspect_ratio: float = 1.0,
                              scribe_cm: float = 0.0) -> "Die":
        """Build a die from eq. (5) inverted: ``A_ch = N_tr · d_d · λ²``.

        ``design_density`` is d_d in λ²-squares per transistor and
        ``feature_size_um`` is λ in microns; the resulting area is
        converted to cm².
        """
        require_positive("n_transistors", n_transistors)
        require_positive("design_density", design_density)
        require_positive("feature_size_um", feature_size_um)
        # (λ·λ) rather than λ**2: exact product, shared bit-for-bit with
        # the vectorized path in repro.batch (libm pow is not).
        area_um2 = n_transistors * design_density \
            * (feature_size_um * feature_size_um)
        return cls.from_area(um2_to_cm2(area_um2), aspect_ratio=aspect_ratio,
                             scribe_cm=scribe_cm)

    @property
    def area_cm2(self) -> float:
        """Die area in cm² (excluding scribe lanes)."""
        return self.width_cm * self.height_cm

    @property
    def area_mm2(self) -> float:
        """Die area in mm² (excluding scribe lanes)."""
        return cm2_to_mm2(self.area_cm2)

    @property
    def aspect_ratio(self) -> float:
        """Width divided by height."""
        return self.width_cm / self.height_cm

    @property
    def pitch_x_cm(self) -> float:
        """Horizontal step between adjacent dies, including scribe."""
        return self.width_cm + self.scribe_cm

    @property
    def pitch_y_cm(self) -> float:
        """Vertical step between adjacent dies, including scribe."""
        return self.height_cm + self.scribe_cm

    @property
    def diagonal_cm(self) -> float:
        """Die diagonal in centimeters — the binding constraint for fitting
        a die on a wafer at all."""
        return math.hypot(self.width_cm, self.height_cm)

    def transistor_count(self, design_density: float, feature_size_um: float) -> float:
        """Eq. (5): ``N_tr = A_ch / (d_d · λ²)``.

        Returns a float; callers that need an integer die budget should
        floor it explicitly.
        """
        require_positive("design_density", design_density)
        require_positive("feature_size_um", feature_size_um)
        area_um2 = self.area_cm2 * 1.0e8
        return area_um2 / (design_density * (feature_size_um * feature_size_um))

    def rotated(self) -> "Die":
        """The same die with width and height exchanged."""
        return replace(self, width_cm=self.height_cm, height_cm=self.width_cm)

    def check_fits_radius(self, radius_cm: float) -> None:
        """Raise :class:`GeometryError` if the die cannot fit on a wafer
        of the given radius in any position."""
        if self.diagonal_cm > 2.0 * radius_cm:
            raise GeometryError(
                f"die {self.width_cm:.3f}x{self.height_cm:.3f} cm cannot fit on a "
                f"wafer of radius {radius_cm:.3f} cm")
