"""Learn per-signature scheduler tuning from flush telemetry.

The scheduler's ``"auto"`` backend routes a coalesced group to the
shared-memory process pool when it has at least ``process_threshold``
unique points — one global guess.  The right crossover is where the
process path's *fixed* overhead (shm block creation, task dispatch,
result collection) is amortized below the thread path's *per-point*
cost, and both of those are measurable from the
:class:`~repro.serve.scheduler.GroupRecord` telemetry each flush
leaves behind.  :func:`learn_profile` does exactly that fit:

* Per signature, the thread backend's seconds-per-point rate
  ``t_sig`` is total observed duration over total points (group setup
  is negligible on that path).
* The process backend's cost model ``a + b·k`` (overhead ``a``,
  per-point ``b``) is a least-squares line over *all* process group
  observations pooled across signatures — the overhead is a property
  of the machinery, not the model, and pooling gives the fit many
  more points.
* The learned threshold for a signature is the smallest group size
  where the process prediction wins: ``k* = a / (t_sig − b)``
  (rounded up; a signature whose thread rate never exceeds ``b``
  gets :data:`~repro.serve.tuning.NEVER_PROCESS`).  The chunk-size
  knob targets ``target_chunk_seconds`` of work per chunk at the
  thread rate, clamped to ``[min_chunk, max_chunk]``.

Signatures with fewer than ``min_samples`` observations, and logs
with no process observations at all, keep the profile defaults — the
learner only overrides what it has evidence for.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.state import enabled as _obs_enabled
from ..serve.scheduler import FlushRecord
from ..serve.tuning import NEVER_PROCESS, SignatureTuning, TuningProfile

__all__ = ["learn_profile"]


def _fit_line(points: list[tuple[int, float]]) -> tuple[float, float] | None:
    """Least-squares ``duration ≈ a + b·k`` fit; None if degenerate."""
    if len(points) < 2:
        return None
    n = float(len(points))
    sum_k = sum(k for k, _ in points)
    sum_d = sum(d for _, d in points)
    sum_kk = sum(k * k for k, _ in points)
    sum_kd = sum(k * d for k, d in points)
    denom = n * sum_kk - sum_k * sum_k
    if denom == 0.0:  # all observations at one group size
        return None
    b = (n * sum_kd - sum_k * sum_d) / denom
    a = (sum_d - b * sum_k) / n
    # A slightly negative intercept/slope is fit noise; clamp so the
    # crossover algebra below stays well-behaved.
    return max(0.0, a), max(0.0, b)


def learn_profile(flush_records: Iterable[FlushRecord], *,
                  default_process_threshold: int = 2048,
                  default_chunk_size: int | None = None,
                  target_chunk_seconds: float = 0.02,
                  min_chunk: int = 256,
                  max_chunk: int = 65536,
                  min_samples: int = 3,
                  meta: dict[str, Any] | None = None) -> TuningProfile:
    """Fit a :class:`~repro.serve.tuning.TuningProfile` from telemetry.

    ``flush_records`` is any iterable of
    :class:`~repro.serve.scheduler.FlushRecord` — typically
    ``scheduler.recent_flushes`` from a live service run with
    ``flush_history`` enabled, or the records a replay run collected.
    Only records carrying per-group detail contribute (those from a
    scheduler with history or recording on).  See the module
    docstring for the fit; keyword arguments set the profile defaults
    and the chunk-size target/clamp.  ``meta`` is merged into the
    profile's provenance block.
    """
    if min_samples < 1:
        raise ParameterError(
            f"min_samples must be >= 1, got {min_samples}")
    if target_chunk_seconds <= 0:
        raise ParameterError(
            f"target_chunk_seconds must be > 0, got {target_chunk_seconds}")
    if not 1 <= min_chunk <= max_chunk:
        raise ParameterError(
            f"need 1 <= min_chunk <= max_chunk, "
            f"got ({min_chunk}, {max_chunk})")

    thread_obs: dict[str, list[tuple[int, float]]] = {}
    process_obs: list[tuple[int, float]] = []
    n_flushes = 0
    n_groups = 0
    with _span("tuning.learn"):
        for flush in flush_records:
            n_flushes += 1
            for g in flush.group_records:
                if not g.sig_key or g.points <= 0:
                    continue
                n_groups += 1
                if g.backend == "process":
                    process_obs.append((g.points, g.duration_s))
                else:
                    thread_obs.setdefault(g.sig_key, []).append(
                        (g.points, g.duration_s))

        process_fit = _fit_line(process_obs)
        signatures: dict[str, SignatureTuning] = {}
        for sig_key, obs in sorted(thread_obs.items()):
            if len(obs) < min_samples:
                continue
            total_points = sum(k for k, _ in obs)
            total_s = sum(d for _, d in obs)
            if total_points <= 0 or total_s <= 0:
                continue
            rate = total_s / total_points
            chunk = int(min(max_chunk,
                            max(min_chunk,
                                round(target_chunk_seconds / rate))))
            if process_fit is None:
                threshold = default_process_threshold
                overhead = None
                proc_rate = None
            else:
                overhead, proc_rate = process_fit
                if rate > proc_rate:
                    threshold = min(
                        NEVER_PROCESS,
                        max(1, math.ceil(overhead / (rate - proc_rate))))
                else:
                    # The process path never wins per-point for this
                    # signature; route it to threads at any size.
                    threshold = NEVER_PROCESS
            signatures[sig_key] = SignatureTuning(
                process_threshold=threshold,
                chunk_size=chunk,
                thread_s_per_point=rate,
                process_s_per_point=proc_rate,
                process_overhead_s=overhead,
                samples=len(obs))

    profile_meta: dict[str, Any] = {
        "flushes": n_flushes,
        "groups": n_groups,
        "process_observations": len(process_obs),
        "target_chunk_seconds": target_chunk_seconds,
        "min_samples": min_samples,
    }
    if meta:
        profile_meta.update(meta)
    if _obs_enabled():
        _metrics.inc("tuning.signatures", len(signatures))
    return TuningProfile(
        default_process_threshold=default_process_threshold,
        default_chunk_size=default_chunk_size,
        signatures=signatures,
        meta=profile_meta)
