"""repro.replay — recorded-traffic replay, tuning, and run-dir reports.

The offline half of the serve telemetry loop.  :mod:`repro.obs.
recording` captures live traffic (``MicroBatchScheduler(record=PATH)``
appends every served query as JSONL); this package re-drives those
logs and turns the telemetry into decisions:

* :mod:`~repro.replay.engine` — :func:`~repro.replay.engine.
  replay_log` runs a recorded log against one
  :class:`~repro.replay.engine.ReplayConfig` (backend × workers ×
  tick policy), in open-loop (original or time-scaled arrivals) or
  closed-loop (maximum pressure) mode, asserting bitwise cost parity
  with the recording and measuring p50/p95/p99 latency, flush shapes,
  queue depth, and dedup rates.
* :mod:`~repro.replay.tuning` — :func:`~repro.replay.tuning.
  learn_profile` fits per-signature thread/process cost rates from
  :class:`~repro.serve.scheduler.FlushRecord` telemetry and emits the
  :class:`~repro.serve.tuning.TuningProfile` that
  ``MicroBatchScheduler(backend="tuned", profile=...)`` loads.
* :mod:`~repro.replay.rundir` — the run-dir reporter behind ``python
  -m repro replay --run-dir DIR``: one ``raw/<config>.json`` per
  config, aggregated into ``results.csv`` and a ranked markdown
  ``report.md`` (the run_all → raw/ → to_csv → report idiom).

Every stage is traced (``replay.*`` / ``tuning.*`` spans and metrics,
off by default like all of :mod:`repro.obs`).  See ``docs/replay.md``
for the walkthrough.
"""

from .engine import ReplayConfig, ReplayResult, replay_log
from .rundir import (
    configs_from_names,
    default_configs,
    run_all,
    to_results_csv,
    write_report,
)
from .tuning import learn_profile

__all__ = [
    "ReplayConfig",
    "ReplayResult",
    "configs_from_names",
    "default_configs",
    "learn_profile",
    "replay_log",
    "run_all",
    "to_results_csv",
    "write_report",
]
