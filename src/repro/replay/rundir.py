"""The run-dir reporter: raw per-config JSON → results.csv → report.md.

:func:`run_all` is the ``python -m repro replay --run-dir DIR`` engine
and follows the run-dir idiom end to end: every replayed config writes
its full measurement as ``raw/<name>.json``; :func:`to_results_csv`
aggregates the raw files into one ``results.csv`` row per config; and
:func:`write_report` renders ``report.md`` — a markdown comparison
table ranked by wall time, with p50/p95/p99 latency, flush occupancy,
dedup, and parity columns.  Because each stage only reads the previous
stage's files, the CSV and report can be regenerated from ``raw/``
alone, and partial runs leave usable artifacts.

The ``"tuned"`` config is special: it is replayed *last*, against a
:class:`~repro.serve.tuning.TuningProfile` either supplied by the
caller or learned on the spot (:func:`~repro.replay.tuning.
learn_profile`) from the flush telemetry the other configs just
produced — the run dir then also contains the ``profile.json`` it
used, so a tuned result is always reproducible from its artifacts.

Layout of a finished run dir::

    DIR/
      raw/<config>.json     one ReplayResult.to_dict() per config
      profile.json          the tuning profile (when "tuned" ran)
      results.csv           one aggregated row per config
      report.md             ranked markdown comparison
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..errors import ParameterError
from ..obs import span as _span
from ..obs.recording import RecordedLog, load_recorded_log
from ..serve.scheduler import FlushRecord
from ..serve.tuning import TuningProfile
from .engine import ReplayConfig, ReplayResult, replay_log
from .tuning import learn_profile

__all__ = ["CSV_COLUMNS", "configs_from_names", "default_configs",
           "run_all", "to_results_csv", "write_report"]

#: The backend names ``--configs`` accepts, in default run order.
CONFIG_NAMES = ("thread", "process", "auto", "tuned")

#: Columns of ``results.csv``, in order.
CSV_COLUMNS = (
    "config", "backend", "workers", "mode", "n_queries", "mismatches",
    "wall_s", "qps", "p50_ms", "p95_ms", "p99_ms", "flushes",
    "mean_flush_requests", "mean_occupancy", "dedup_rate",
    "max_queue_depth",
)


def default_configs(workers: int = 2) -> list[ReplayConfig]:
    """The standard non-tuned comparison set: thread, process, auto."""
    return configs_from_names(("thread", "process", "auto"),
                              workers=workers)


def configs_from_names(names: Iterable[str], *,
                       workers: int = 2,
                       profile: TuningProfile | None = None,
                       max_batch_size: int = 256,
                       max_wait_s: float = 0.002,
                       process_threshold: int = 2048
                       ) -> list[ReplayConfig]:
    """Build :class:`~repro.replay.engine.ReplayConfig`s by name.

    ``names`` draws from :data:`CONFIG_NAMES`; ``"tuned"`` requires a
    ``profile`` (in :func:`run_all` it may instead be learned from the
    other configs' telemetry).  The remaining keywords apply to every
    config, so the comparison isolates the backend choice.
    """
    configs = []
    for name in names:
        if name not in CONFIG_NAMES:
            raise ParameterError(
                f"config must be one of {CONFIG_NAMES}, got {name!r}")
        if name == "tuned" and profile is None:
            raise ParameterError(
                "a 'tuned' config needs a TuningProfile "
                "(run_all learns one when not supplied)")
        configs.append(ReplayConfig(
            name=name, backend=name, workers=workers,
            max_batch_size=max_batch_size, max_wait_s=max_wait_s,
            process_threshold=process_threshold,
            profile=profile if name == "tuned" else None))
    return configs


def _write_raw(run_dir: Path, result: ReplayResult) -> Path:
    raw_dir = run_dir / "raw"
    raw_dir.mkdir(parents=True, exist_ok=True)
    path = raw_dir / f"{result.config.name}.json"
    path.write_text(json.dumps(result.to_dict(), indent=2) + "\n",
                    encoding="utf-8")
    return path


def _load_raw(run_dir: Path) -> list[dict[str, Any]]:
    raw_dir = Path(run_dir) / "raw"
    if not raw_dir.is_dir():
        raise ParameterError(f"no raw/ directory under {run_dir}")
    docs = []
    for path in sorted(raw_dir.glob("*.json")):
        docs.append(json.loads(path.read_text(encoding="utf-8")))
    if not docs:
        raise ParameterError(f"no raw/*.json results under {run_dir}")
    docs.sort(key=lambda d: d["wall_s"])
    return docs


def to_results_csv(run_dir: str | os.PathLike) -> Path:
    """Aggregate ``raw/*.json`` into ``results.csv`` (one row/config).

    Rows are ordered fastest-first by wall time.  Returns the CSV
    path; raises :class:`~repro.errors.ParameterError` when the run
    dir has no raw results.
    """
    run_dir = Path(run_dir)
    docs = _load_raw(run_dir)
    path = run_dir / "results.csv"
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(CSV_COLUMNS)
        for doc in docs:
            cfg = doc["config"]
            writer.writerow([
                cfg["name"], cfg["backend"], cfg["workers"], doc["mode"],
                doc["n_queries"], doc["mismatches"], doc["wall_s"],
                doc["qps"], doc["p50_ms"], doc["p95_ms"], doc["p99_ms"],
                doc["flushes"], doc["mean_flush_requests"],
                doc["mean_occupancy"], doc["dedup_rate"],
                doc["max_queue_depth"]])
    return path


def write_report(run_dir: str | os.PathLike) -> Path:
    """Render ``report.md`` from the run dir's raw results.

    A ranked comparison table (fastest config first) with throughput,
    p50/p95/p99 latency, flush occupancy, dedup rate, and the parity
    verdict; when the run learned or used a ``profile.json`` its
    per-signature thresholds are summarized below the table.  Returns
    the report path.
    """
    run_dir = Path(run_dir)
    docs = _load_raw(run_dir)
    lines = ["# Replay comparison report", ""]
    head = docs[0]
    lines.append(
        f"{head['n_queries']} replayed queries per config, "
        f"mode `{head['mode']}` (speed ×{head['speed']:g}).")
    lines.append("")
    lines.append(
        "| rank | config | backend | workers | wall s | qps "
        "| p50 ms | p95 ms | p99 ms | occupancy | dedup | mismatches |")
    lines.append(
        "|---:|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|")
    for rank, doc in enumerate(docs, start=1):
        cfg = doc["config"]
        lines.append(
            f"| {rank} | {cfg['name']} | {cfg['backend']} "
            f"| {cfg['workers']} | {doc['wall_s']:.3f} "
            f"| {doc['qps']:.0f} | {doc['p50_ms']:.2f} "
            f"| {doc['p95_ms']:.2f} | {doc['p99_ms']:.2f} "
            f"| {doc['mean_occupancy']:.2f} | {doc['dedup_rate']:.2f} "
            f"| {doc['mismatches']} |")
    lines.append("")
    total_mismatches = sum(d["mismatches"] for d in docs)
    if total_mismatches == 0:
        lines.append(
            "**Parity:** every replayed cost was bitwise equal to the "
            "recording, across all configs.")
    else:
        lines.append(
            f"**Parity: FAILED** — {total_mismatches} bitwise "
            f"mismatches against the recording (serve contract "
            f"violation; see raw/*.json).")
    profile_path = run_dir / "profile.json"
    if profile_path.exists():
        profile = TuningProfile.load(profile_path)
        lines.append("")
        lines.append(
            f"**Tuning profile:** {len(profile.signatures)} learned "
            f"signature(s), default process_threshold "
            f"{profile.default_process_threshold} (`profile.json`).")
        for key, tuning in sorted(profile.signatures.items()):
            rate = tuning.thread_s_per_point
            rate_txt = f"{rate * 1e6:.2f} µs/pt" if rate else "n/a"
            lines.append(
                f"- `{key}`: process_threshold={tuning.process_threshold}, "
                f"chunk_size={tuning.chunk_size}, thread rate {rate_txt}, "
                f"{tuning.samples} samples")
    lines.append("")
    path = run_dir / "report.md"
    path.write_text("\n".join(lines), encoding="utf-8")
    return path


def run_all(log: RecordedLog | str | os.PathLike,
            run_dir: str | os.PathLike, *,
            names: Sequence[str] = CONFIG_NAMES,
            configs: Sequence[ReplayConfig] | None = None,
            workers: int = 2,
            mode: str = "closed",
            speed: float = 1.0,
            profile: TuningProfile | str | os.PathLike | None = None,
            timeout: float = 300.0) -> dict[str, Any]:
    """Replay a log against every config and emit the full run dir.

    Configs come from ``configs`` (explicit
    :class:`~repro.replay.engine.ReplayConfig` objects) or from
    ``names`` (see :data:`CONFIG_NAMES`).  A ``"tuned"`` entry runs
    last: its profile is ``profile`` (object or saved JSON path) when
    given, otherwise learned from the flush telemetry of the configs
    that just ran; either way the profile used is saved as
    ``profile.json`` in the run dir.  Returns a summary dict with the
    :class:`~repro.replay.engine.ReplayResult` list (``"results"``),
    the profile used (``"profile"``), and the artifact paths.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    if isinstance(log, (str, os.PathLike)):
        log = load_recorded_log(log)
    if isinstance(profile, (str, os.PathLike)):
        profile = TuningProfile.load(profile)

    if configs is None:
        plain = configs_from_names(
            [n for n in names if n != "tuned"], workers=workers)
        want_tuned = "tuned" in names
    else:
        plain = [c for c in configs if c.backend != "tuned"]
        want_tuned = any(c.backend == "tuned" for c in configs)
        for c in configs:
            if c.backend == "tuned" and c.profile is not None \
                    and profile is None:
                profile = c.profile

    results: list[ReplayResult] = []
    with _span("replay.rundir", configs=len(plain) + int(want_tuned)):
        for config in plain:
            result = replay_log(log, config, mode=mode, speed=speed,
                                timeout=timeout)
            _write_raw(run_dir, result)
            results.append(result)
        if want_tuned:
            if profile is None:
                telemetry: list[FlushRecord] = []
                for result in results:
                    telemetry.extend(result.flush_records)
                profile = learn_profile(
                    telemetry,
                    meta={"learned_from": str(log.path)
                          if isinstance(log, RecordedLog) else "replay",
                          "configs": [c.name for c in plain]})
            profile.save(run_dir / "profile.json")
            tuned_config = ReplayConfig(
                name="tuned", backend="tuned", workers=workers,
                profile=profile)
            result = replay_log(log, tuned_config, mode=mode, speed=speed,
                                timeout=timeout)
            _write_raw(run_dir, result)
            results.append(result)
        csv_path = to_results_csv(run_dir)
        report_path = write_report(run_dir)
    return {
        "run_dir": run_dir,
        "results": results,
        "profile": profile if want_tuned else None,
        "csv": csv_path,
        "report": report_path,
        "mismatches": sum(r.mismatches for r in results),
    }
