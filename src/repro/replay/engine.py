"""Re-drive a recorded traffic log against one scheduler config.

:func:`replay_log` is the measurement core of the replay harness: it
builds a fresh :class:`~repro.serve.scheduler.MicroBatchScheduler`
from a :class:`ReplayConfig`, pushes a recorded log's queries through
it, and returns a :class:`ReplayResult` with two kinds of truth:

* **Parity** — every replayed cost is compared *bitwise* against the
  cost the original run recorded.  The serve contract says results
  are independent of batching, backend, worker count, and chunking,
  so any mismatch is a real bug (or a corrupted log), not noise.
  Replay is therefore also a regression harness: a log recorded
  yesterday re-checks today's scheduler end to end.
* **Performance** — wall time, throughput, p50/p95/p99 request
  latency, flush-size histogram, queue-depth high-water mark, and
  dedup/coalescing rates, per config, from the same run.

Two drive modes:

* ``mode="open"`` (open-loop) replays the recorded inter-arrival
  gaps — each query is submitted at its original offset divided by
  ``speed`` (``speed=2.0`` → twice as fast) — measuring latency under
  the recorded arrival process.
* ``mode="closed"`` submits everything at once through the bulk path
  and drains — the maximum-pressure shape, measuring throughput and
  coalescing with arrival timing factored out.

Obs integration (off by default): the run is wrapped in a
``replay.run`` span carrying the config name, and
``replay.queries`` / ``replay.mismatches`` counters accumulate across
runs.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.recording import RecordedLog, RecordedQuery, load_recorded_log
from ..obs.state import enabled as _obs_enabled
from ..serve.scheduler import (
    SCHEDULER_BACKEND_CHOICES,
    FlushRecord,
    MicroBatchScheduler,
)
from ..serve.tuning import TuningProfile

__all__ = ["ReplayConfig", "ReplayResult", "replay_log"]

#: Replay drive modes (see the module docstring).
REPLAY_MODES = ("open", "closed")


@dataclass(frozen=True)
class ReplayConfig:
    """One scheduler configuration to replay a log against.

    A named bundle of the :class:`~repro.serve.scheduler.
    MicroBatchScheduler` knobs the harness sweeps — backend, workers,
    batch/tick shape — plus the loaded
    :class:`~repro.serve.tuning.TuningProfile` when ``backend`` is
    ``"tuned"``.  ``name`` labels the config in run dirs, CSV rows,
    and reports.
    """

    name: str
    backend: str = "auto"
    workers: int = 1
    max_batch_size: int = 256
    max_wait_s: float = 0.002
    chunk_size: int = 4096
    process_threshold: int = 2048
    adaptive: bool = False
    profile: TuningProfile | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("config name must be non-empty")
        if self.backend not in SCHEDULER_BACKEND_CHOICES:
            raise ParameterError(
                f"backend must be one of {SCHEDULER_BACKEND_CHOICES}, "
                f"got {self.backend!r}")
        if self.backend == "tuned" and self.profile is None:
            raise ParameterError(
                "a 'tuned' replay config needs its TuningProfile")

    def scheduler_kwargs(self) -> dict[str, Any]:
        """The keyword arguments this config hands the scheduler."""
        kwargs: dict[str, Any] = {
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "chunk_size": self.chunk_size,
            "workers": self.workers,
            "backend": self.backend,
            "process_threshold": self.process_threshold,
            "adaptive": self.adaptive,
        }
        if self.profile is not None:
            kwargs["profile"] = self.profile
        return kwargs

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary (the profile reduces to a flag + size)."""
        return {
            "name": self.name,
            "backend": self.backend,
            "workers": self.workers,
            "max_batch_size": self.max_batch_size,
            "max_wait_s": self.max_wait_s,
            "chunk_size": self.chunk_size,
            "process_threshold": self.process_threshold,
            "adaptive": self.adaptive,
            "tuned_signatures": len(self.profile.signatures)
            if self.profile is not None else None,
        }


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted values (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class ReplayResult:
    """Everything one replay run measured.

    ``mismatches`` counts replayed costs that were not bitwise equal
    to the recorded ones (the parity contract says it must be 0).
    Latency fields are milliseconds from submit to ticket completion.
    ``flush_records`` keeps the raw scheduler telemetry for the
    tuning analyzer; :meth:`to_dict` summarizes it (histogram +
    means) instead of serializing every record.
    """

    config: ReplayConfig
    mode: str
    speed: float
    n_queries: int
    n_skipped: int
    wall_s: float
    mismatches: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_queue_depth: int
    flush_records: list[FlushRecord] = field(default_factory=list)

    @property
    def qps(self) -> float:
        """Replayed queries per wall-clock second."""
        return self.n_queries / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def flushes(self) -> int:
        """Number of scheduler flushes the replay produced."""
        return len(self.flush_records)

    @property
    def mean_flush_requests(self) -> float:
        """Mean requests per flush (the coalescing win)."""
        if not self.flush_records:
            return 0.0
        return sum(f.requests for f in self.flush_records) \
            / len(self.flush_records)

    @property
    def mean_occupancy(self) -> float:
        """Mean flush fill fraction of ``max_batch_size``."""
        if not self.flush_records:
            return 0.0
        return sum(f.requests for f in self.flush_records) \
            / (len(self.flush_records) * self.config.max_batch_size)

    @property
    def dedup_rate(self) -> float:
        """Fraction of requests answered from an in-flush duplicate."""
        total = sum(f.requests for f in self.flush_records)
        if total == 0:
            return 0.0
        unique = sum(f.unique for f in self.flush_records)
        return 1.0 - unique / total

    @property
    def backend_groups(self) -> dict[str, int]:
        """Signature groups executed per backend name."""
        counts: dict[str, int] = {}
        for flush in self.flush_records:
            for g in flush.group_records:
                counts[g.backend] = counts.get(g.backend, 0) + 1
        return counts

    @property
    def flush_size_hist(self) -> dict[str, int]:
        """Histogram of flush sizes (requests per flush → count)."""
        hist: dict[int, int] = {}
        for flush in self.flush_records:
            hist[flush.requests] = hist.get(flush.requests, 0) + 1
        return {str(size): hist[size] for size in sorted(hist)}

    def to_dict(self) -> dict[str, Any]:
        """The ``raw/<config>.json`` document for one replay run."""
        return {
            "config": self.config.to_dict(),
            "mode": self.mode,
            "speed": self.speed,
            "n_queries": self.n_queries,
            "n_skipped": self.n_skipped,
            "wall_s": self.wall_s,
            "qps": self.qps,
            "mismatches": self.mismatches,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_queue_depth": self.max_queue_depth,
            "flushes": self.flushes,
            "mean_flush_requests": self.mean_flush_requests,
            "mean_occupancy": self.mean_occupancy,
            "dedup_rate": self.dedup_rate,
            "backend_groups": self.backend_groups,
            "flush_size_hist": self.flush_size_hist,
        }


def _coerce_log(log: RecordedLog | str | os.PathLike
                | Iterable[RecordedQuery]) -> list[RecordedQuery]:
    if isinstance(log, (str, os.PathLike)):
        log = load_recorded_log(log)
    if isinstance(log, RecordedLog):
        return log.records
    return list(log)


def replay_log(log: RecordedLog | str | os.PathLike
               | Iterable[RecordedQuery],
               config: ReplayConfig, *,
               mode: str = "open",
               speed: float = 1.0,
               timeout: float = 300.0) -> ReplayResult:
    """Replay a recorded log against one config; measure and verify.

    ``log`` is a :class:`~repro.obs.recording.RecordedLog`, a path to
    one, or an iterable of records.  Records without a rebuilt query
    are skipped (counted in ``n_skipped``); the rest are submitted in
    recorded order — at their original arrival offsets divided by
    ``speed`` when ``mode="open"``, all at once when
    ``mode="closed"``.  Each replayed cost is compared bitwise against
    the recorded cost (recorded-error lines, ``cost=None``, only
    check that replay also fails).  ``timeout`` bounds the whole
    drain.  Returns the measured :class:`ReplayResult`; raises
    :class:`~repro.errors.ParameterError` on a bad mode/speed and
    ``TimeoutError`` if the drain exceeds ``timeout``.
    """
    if mode not in REPLAY_MODES:
        raise ParameterError(
            f"mode must be one of {REPLAY_MODES}, got {mode!r}")
    if speed <= 0:
        raise ParameterError(f"speed must be > 0, got {speed}")
    records = _coerce_log(log)
    replayable = [r for r in records if r.query is not None]
    n_skipped = len(records) - len(replayable)

    kwargs = config.scheduler_kwargs()
    kwargs["flush_history"] = max(1, len(replayable) + 16)
    kwargs["max_queue_depth"] = max(10_000, len(replayable))

    latencies: list[float] = []

    def _make_callback(t_submit: float):
        def _cb(_ticket) -> None:
            latencies.append(time.perf_counter() - t_submit)
        return _cb

    obs_on = _obs_enabled()
    with _span("replay.run", config=config.name, mode=mode,
               queries=len(replayable)):
        scheduler = MicroBatchScheduler(**kwargs)
        max_depth = 0
        tickets = []
        try:
            scheduler.start()
            t_wall0 = time.perf_counter()
            if mode == "open":
                epoch = time.perf_counter()
                for rec in replayable:
                    target = epoch + rec.t / speed
                    delay = target - time.perf_counter()
                    if delay > 0:
                        time.sleep(delay)
                    t_submit = time.perf_counter()
                    ticket = scheduler.submit(rec.query)
                    ticket.add_done_callback(_make_callback(t_submit))
                    tickets.append(ticket)
                    depth = scheduler.queue_depth
                    if depth > max_depth:
                        max_depth = depth
            else:
                t_submit = time.perf_counter()
                tickets = scheduler.submit_many(
                    [r.query for r in replayable])
                for ticket in tickets:
                    ticket.add_done_callback(_make_callback(t_submit))
                max_depth = scheduler.queue_depth
            deadline = time.monotonic() + timeout
            mismatches = 0
            for ticket, rec in zip(tickets, replayable):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"replay of {len(replayable)} queries exceeded "
                        f"timeout={timeout}s")
                if rec.cost is None:
                    # The recorded flush failed; replay matches parity
                    # by failing too (any exception type counts).
                    try:
                        ticket.cost(remaining)
                    except TimeoutError:
                        raise
                    except Exception:
                        pass
                    else:
                        mismatches += 1
                    continue
                if ticket.cost(remaining) != rec.cost:
                    mismatches += 1
            wall_s = time.perf_counter() - t_wall0
            flush_records = scheduler.recent_flushes
        finally:
            scheduler.close()

    latencies.sort()
    lat_ms = [v * 1e3 for v in latencies]
    if obs_on:
        _metrics.inc("replay.queries", len(replayable))
        _metrics.inc("replay.mismatches", mismatches)
    return ReplayResult(
        config=config, mode=mode, speed=speed,
        n_queries=len(replayable), n_skipped=n_skipped,
        wall_s=wall_s, mismatches=mismatches,
        p50_ms=_percentile(lat_ms, 50.0),
        p95_ms=_percentile(lat_ms, 95.0),
        p99_ms=_percentile(lat_ms, 99.0),
        max_queue_depth=max_depth,
        flush_records=flush_records)
