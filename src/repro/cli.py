"""Command-line interface: reproduce figures/tables and price designs.

Usage::

    python -m repro figure fig7                # any of fig1..fig8
    python -m repro table table3               # table1..table3
    python -m repro cost --transistors 3.1e6 --feature-size 0.8 \\
        --density 150 --yield0 0.7 --c0 700 --x 1.8
    python -m repro cost --input points.csv --density 150 --format json
    python -m repro optimize --die-area 1.0
    python -m repro optimize --input areas.csv --format csv
    python -m repro scenarios --lam-lo 0.25 --lam-hi 1.0
    python -m repro simulate --lot-size 25 --workers 4 --seed 7
    python -m repro fit-yield --lots 8 --wafers 6 --lot-alpha 2.0 \\
        --wafer-alpha 1.2 --seed 7 --format table
    python -m repro sweep --ntr-points 1000 --lam-points 1000 \\
        --workers 4 --backend process --tile-size 65536 \\
        --checkpoint runs/fig8 --output landscape.npy
    python -m repro sweep --checkpoint runs/fig8 --resume ...
    python -m repro chiplet --transistors 1e7 --chiplets 4 \\
        --packaging interposer
    python -m repro chiplet --sweep --k-max 8 --ntr-points 400 \\
        --workers 2 --backend process --checkpoint runs/chiplet
    python -m repro cost --input points.csv --density 150 \\
        --record traffic.jsonl
    python -m repro replay --log traffic.jsonl --run-dir runs/replay

Everything prints plain text (ASCII charts/tables); exit code 0 on
success, 2 on bad arguments.

Batch mode: ``cost`` and ``optimize`` accept ``--input points.csv`` /
``points.json`` (see :mod:`repro.serve.io` for the accepted fields)
and then emit one result row per point as ``--format csv`` (default)
or ``--format json`` columnar arrays — the
:class:`~repro.batch.engine.BatchCostResult` convention.  ``cost``
batches are priced through :class:`repro.serve.CostService`, so a
10,000-point file costs a handful of vectorized evaluations, not
10,000 scalar ones; ``optimize`` batches run one tiled sweep through
:func:`repro.core.optimization.optimal_feature_size_for_die_areas`.

``sweep`` evaluates a full (λ, N_tr) Fig.-8 landscape through
:class:`repro.batch.sweep.TiledSweepRunner` — tiled, optionally on
the shared-memory process pool (``--workers/--backend/--tile-size``),
optionally checkpointed and resumable (``--checkpoint DIR``,
``--resume``); see ``docs/performance.md`` ("Mega-sweeps").

``cost --record FILE`` appends every query the batch service prices
to a JSONL traffic log; ``replay`` re-drives such a log against any
subset of the ``thread``/``process``/``auto``/``tuned`` scheduler
configs, asserts bitwise result parity, and writes a run dir
(``raw/*.json`` → ``results.csv`` → ``report.md``) — the full
record → replay → report loop is ``docs/replay.md``.

Every command also accepts the observability flags from
``docs/observability.md``: ``--trace FILE`` writes the run's span tree
as JSON lines, ``--metrics`` prints the metrics table after the
command's own output.  ``REPRO_TRACE=1`` / ``REPRO_METRICS=1`` in the
environment enable the same instrumentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import obs as _obs
from .analysis import (
    ascii_chart,
    ascii_table,
    fig1_feature_size,
    fig2_fab_cost,
    fig3_die_size,
    fig4_steps_and_defects,
    fig5_defect_distribution,
    fig6_scenario1,
    fig7_scenario2,
    fig8_contours,
    render_contour_grid,
    table1,
    table2,
    table3,
)
from .core import TransistorCostModel, WaferCostModel
from .core.optimization import optimal_feature_size_for_die_area
from .errors import (
    BackpressureError,
    ParameterError,
    ReproError,
    ServiceClosedError,
)
from .geometry import Wafer
from .yieldsim import ReferenceAreaYield

_FIGURES = {
    "fig1": fig1_feature_size,
    "fig2": fig2_fab_cost,
    "fig3": fig3_die_size,
    "fig4": fig4_steps_and_defects,
    "fig5": fig5_defect_distribution,
    "fig6": fig6_scenario1,
    "fig7": fig7_scenario2,
}

_TABLES = {"table1": table1, "table2": table2, "table3": table3}


def _print_figure(name: str) -> None:
    if name == "fig8":
        data, landscape = fig8_contours()
        levels = landscape.contour_levels(8, max_decades=2.5)
        print(f"{data.name} — {data.notes}")
        print(render_contour_grid(landscape.grid(), list(levels),
                                  x_values=list(landscape.feature_sizes_um),
                                  y_values=list(landscape.transistor_counts)))
        return
    data = _FIGURES[name]()
    print(f"{data.name} — {data.notes}")
    print(ascii_chart(data.x, data.series, log_y=data.log_y,
                      x_label=data.x_label, y_label=data.y_label))


def _print_table(name: str) -> None:
    data = _TABLES[name]()
    print(f"{data.name} — {data.notes}")
    print(ascii_table(data.headers, list(data.rows)))


def _build_cost_model(args: argparse.Namespace) -> TransistorCostModel:
    return TransistorCostModel(
        wafer_cost=WaferCostModel(reference_cost_dollars=args.c0,
                                  cost_growth_rate=args.x),
        wafer=Wafer(radius_cm=args.wafer_radius))


def _require_flag(value: object, flag: str, why: str) -> None:
    if value is None:
        raise ParameterError(f"{flag} is required {why}")


def _cost_queries_from_file(args: argparse.Namespace, path: str) -> list:
    """Build ModelCostQuery objects from a point file (--input/--prewarm)."""
    from .serve import ModelCostQuery, load_points
    model = _build_cost_model(args)
    queries = []
    for i, point in enumerate(load_points(path)):
        transistors = point.get("transistors", args.transistors)
        feature_size = point.get("feature_size", args.feature_size)
        density = point.get("density", args.density)
        _require_flag(transistors, "--transistors",
                      f"(point {i} has no transistors field)")
        _require_flag(feature_size, "--feature-size",
                      f"(point {i} has no feature_size field)")
        _require_flag(density, "--density",
                      f"(point {i} has no density field)")
        if "die_area" in point:
            raise ParameterError(
                f"point {i}: die_area is an 'optimize --input' field; "
                f"cost points take transistors/feature_size")
        queries.append(ModelCostQuery(
            n_transistors=transistors, feature_size_um=feature_size,
            model=model, design_density=density,
            yield_model=ReferenceAreaYield(
                reference_yield=point.get("yield0", args.yield0),
                reference_area_cm2=1.0)))
    return queries


def _cost_batch(args: argparse.Namespace) -> None:
    import sys as _sys

    from .serve import CostService, format_served_csv, format_served_json
    service = CostService(backend=args.serve_backend,
                          workers=args.serve_workers,
                          record=args.record)
    with service:
        if args.prewarm is not None:
            from .obs.recording import (
                is_recorded_log,
                load_recorded_queries,
            )
            cache = service.scheduler.cache
            if is_recorded_log(args.prewarm):
                # A recorder JSONL log carries the full query spec.
                warm_queries = load_recorded_queries(args.prewarm)
            else:
                warm_queries = _cost_queries_from_file(args, args.prewarm)
            if cache is None:
                print(f"prewarm skipped: caching disabled "
                      f"({len(warm_queries)} queries ignored)",
                      file=_sys.stderr)
            else:
                warmed = cache.prewarm(warm_queries)
                print(f"prewarmed {warmed} unique points from "
                      f"{len(warm_queries)} recorded queries",
                      file=_sys.stderr)
        if args.input is None:
            return
        try:
            results = service.map(_cost_queries_from_file(args, args.input))
        except (BackpressureError, ServiceClosedError) as exc:
            # Shell pipelines get the same structured error object as
            # HTTP clients (repro.serve.codec) before the exit-2 prose.
            import json as _json

            from .serve.codec import error_body
            print(_json.dumps(error_body(exc)), file=_sys.stderr)
            raise
    formatter = format_served_json if args.format == "json" \
        else format_served_csv
    print(formatter(results), end="")


def _cmd_cost(args: argparse.Namespace) -> None:
    if args.input is not None or args.prewarm is not None:
        _cost_batch(args)
        return
    _require_flag(args.transistors, "--transistors", "without --input")
    _require_flag(args.feature_size, "--feature-size", "without --input")
    _require_flag(args.density, "--density", "without --input")
    model = _build_cost_model(args)
    breakdown = model.evaluate(
        n_transistors=args.transistors,
        feature_size_um=args.feature_size,
        design_density=args.density,
        yield_model=ReferenceAreaYield(reference_yield=args.yield0,
                                       reference_area_cm2=1.0))
    rows = [
        ("wafer cost [$]", breakdown.wafer_cost_dollars),
        ("die area [cm^2]", breakdown.die_area_cm2),
        ("dies per wafer", float(breakdown.dies_per_wafer)),
        ("yield", breakdown.yield_value),
        ("good dies per wafer", breakdown.good_dies_per_wafer),
        ("cost per good die [$]", breakdown.cost_per_good_die_dollars),
        ("cost per transistor [$1e-6]",
         breakdown.cost_per_transistor_microdollars),
    ]
    print(ascii_table(("quantity", "value"), rows))


_OPTIMIZE_FIELDS = ("die_area_cm2", "optimal_feature_size_um",
                    "cost_per_transistor_dollars",
                    "cost_per_transistor_microdollars")


def _optimize_batch(args: argparse.Namespace) -> None:
    import csv as _csv
    import io as _io
    import json as _json

    from .core.optimization import optimal_feature_size_for_die_areas
    from .serve import load_points
    areas = []
    for i, point in enumerate(load_points(args.input)):
        area = point.get("die_area")
        _require_flag(area, "die_area",
                      f"(point {i} has no die_area field)")
        areas.append(area)
    lams, costs = optimal_feature_size_for_die_areas(
        areas, workers=args.workers, backend=args.backend)
    rows = [(area, float(lam), float(cost), float(cost) * 1e6)
            for area, lam, cost in zip(areas, lams, costs)]
    if args.format == "json":
        columns = {name: [row[i] for row in rows]
                   for i, name in enumerate(_OPTIMIZE_FIELDS)}
        print(_json.dumps(columns, indent=2))
    else:
        out = _io.StringIO()
        writer = _csv.writer(out, lineterminator="\n")
        writer.writerow(_OPTIMIZE_FIELDS)
        writer.writerows(rows)
        print(out.getvalue(), end="")


def _cmd_optimize(args: argparse.Namespace) -> None:
    if args.input is not None:
        _optimize_batch(args)
        return
    _require_flag(args.die_area, "--die-area", "without --input")
    lam, cost = optimal_feature_size_for_die_area(args.die_area)
    print(ascii_table(("quantity", "value"), [
        ("die area [cm^2]", args.die_area),
        ("optimal feature size [um]", lam),
        ("cost per transistor at optimum [$1e-6]", cost * 1e6),
    ]))


def _cmd_sweep(args: argparse.Namespace) -> None:
    import numpy as np

    from .batch.sweep import (
        ChipletCrossoverSweep,
        FabCostSweep,
        TiledSweepRunner,
    )
    if args.ntr_points < 1 or args.lam_points < 1:
        raise ParameterError("--ntr-points and --lam-points must be >= 1")
    counts = np.geomspace(args.ntr_lo, args.ntr_hi, args.ntr_points)
    if args.spec == "chiplet":
        # Rows are chiplet counts, columns are transistor budgets; the
        # feature size is fixed (--lam-lo) — the crossover framing.
        if args.k_max < 1:
            raise ParameterError("--k-max must be >= 1")
        spec: object = ChipletCrossoverSweep(feature_size_um=args.lam_lo)
        row_values = np.arange(1, args.k_max + 1, dtype=float)
        col_values = counts
    else:
        spec = FabCostSweep()
        row_values = counts
        col_values = np.linspace(args.lam_lo, args.lam_hi, args.lam_points)
    with TiledSweepRunner(backend=args.backend, workers=args.workers,
                          tile_size=args.tile_size,
                          checkpoint_dir=args.checkpoint,
                          resume=args.resume) as runner:
        result = runner.run(spec, row_values, col_values)
    if args.output:
        np.save(args.output, result.values)
    grid = result.values
    finite = np.isfinite(grid)
    stats = result.stats
    rows = [
        ("grid points", float(grid.size)),
        ("feasible cells", float(np.count_nonzero(finite))),
        ("tiles (computed/resumed/total)",
         f"{stats['tiles_computed']} / {stats['tiles_resumed']} / "
         f"{stats['tiles_total']}"),
        ("tile shape", f"{stats['tile_rows']} x {stats['tile_cols']}"),
        ("backend", stats["backend"]),
        ("workers", float(stats["workers"])),
        ("seconds", stats["seconds"]),
    ]
    at = result.argmin()
    if at is not None:
        i, j = at
        rows.append(("min cost per transistor [$1e-6]", grid[i, j] * 1e6))
        if args.spec == "chiplet":
            rows += [
                ("optimal chiplet count", float(row_values[i])),
                ("optimal transistor count", float(col_values[j])),
            ]
        else:
            rows += [
                ("optimal feature size [um]", float(col_values[j])),
                ("optimal transistor count", float(row_values[i])),
            ]
    if args.spec == "chiplet" and args.k_max > 1:
        mono = grid[0]
        for i in range(1, grid.shape[0]):
            wins = finite[i] & (grid[i] < mono)
            first = int(np.argmax(wins)) if wins.any() else None
            rows.append((
                f"crossover k={int(row_values[i])} [N_tr]",
                float(col_values[first]) if first is not None
                else float("nan")))
    if args.output:
        rows.append(("saved grid", args.output))
    print(ascii_table(("quantity", "value"), rows))


def _chiplet_model(args: argparse.Namespace):
    from .system.chiplet import PACKAGING_TECHS, ChipletCostModel
    return ChipletCostModel(packaging=PACKAGING_TECHS[args.packaging],
                            probe_coverage=args.probe_coverage)


def _chiplet_sweep(args: argparse.Namespace) -> None:
    import numpy as np

    from .batch.sweep import ChipletCrossoverSweep, TiledSweepRunner
    if args.k_max < 2:
        raise ParameterError("--k-max must be >= 2 for a crossover sweep")
    if args.ntr_points < 2:
        raise ParameterError("--ntr-points must be >= 2")
    spec = ChipletCrossoverSweep(feature_size_um=args.feature_size,
                                 model=_chiplet_model(args))
    ks = np.arange(1, args.k_max + 1, dtype=float)
    counts = np.geomspace(args.ntr_lo, args.ntr_hi, args.ntr_points)
    with TiledSweepRunner(backend=args.backend, workers=args.workers,
                          tile_size=args.tile_size,
                          checkpoint_dir=args.checkpoint,
                          resume=args.resume) as runner:
        result = runner.run(spec, ks, counts)
    grid = result.values
    if args.output:
        np.save(args.output, grid)
    finite = np.isfinite(grid)
    stats = result.stats
    rows = [
        ("feature size [um]", args.feature_size),
        ("grid points", float(grid.size)),
        ("feasible cells", float(np.count_nonzero(finite))),
        ("backend", stats["backend"]),
        ("workers", float(stats["workers"])),
        ("tiles (computed/resumed/total)",
         f"{stats['tiles_computed']} / {stats['tiles_resumed']} / "
         f"{stats['tiles_total']}"),
        ("seconds", stats["seconds"]),
    ]
    mono = grid[0]
    for i in range(1, grid.shape[0]):
        wins = finite[i] & (grid[i] < mono)
        if wins.any():
            value = float(counts[int(np.argmax(wins))])
        else:
            value = float("nan")
        rows.append((f"crossover k={int(ks[i])} [N_tr]", value))
    if args.output:
        rows.append(("saved grid", args.output))
    print(ascii_table(("quantity", "value"), rows))


def _cmd_chiplet(args: argparse.Namespace) -> None:
    if args.sweep:
        _chiplet_sweep(args)
        return
    breakdown = _chiplet_model(args).system_cost(
        args.chiplets, args.transistors, args.feature_size)
    rows = [
        ("chiplets", float(breakdown.chiplets)),
        ("transistors per chiplet", breakdown.transistors_per_chiplet),
        ("chiplet area [cm^2]", breakdown.chiplet_area_cm2),
        ("wafer cost [$]", breakdown.wafer_cost_dollars),
        ("chiplet dies per wafer", float(breakdown.dies_per_wafer)),
        ("die yield", breakdown.die_yield),
        ("assembly yield", breakdown.assembly_yield),
        ("effective yield", breakdown.effective_yield),
        ("packaging cost [$]", breakdown.packaging_cost_dollars),
        ("silicon cost per transistor [$1e-6]",
         breakdown.silicon_cost_per_transistor_dollars * 1e6),
        ("overhead cost per transistor [$1e-6]",
         breakdown.overhead_cost_per_transistor_dollars * 1e6),
        ("cost per transistor [$1e-6]",
         breakdown.cost_per_transistor_microdollars),
        ("system cost [$]", breakdown.system_cost_dollars),
        ("feasible", float(breakdown.feasible)),
    ]
    print(ascii_table(("quantity", "value"), rows))


def _cmd_scenarios(args: argparse.Namespace) -> None:
    import numpy as np

    from .core import SCENARIO_1, SCENARIO_2
    lams = np.linspace(args.lam_lo, args.lam_hi, 26)
    series = {}
    for x in SCENARIO_1.growth_rates:
        series[f"scen1 X={x}"] = np.array(
            [SCENARIO_1.cost_dollars(l, x) * 1e6 for l in lams])
    for x in SCENARIO_2.growth_rates:
        series[f"scen2 X={x}"] = np.array(
            [SCENARIO_2.cost_dollars(l, x) * 1e6 for l in lams])
    print("Cost per transistor [$1e-6] vs feature size [um]")
    print(ascii_chart(lams, series, log_y=True,
                      x_label="feature size [um]", y_label="C_tr [$1e-6]"))


def _cmd_shrink(args: argparse.Namespace) -> None:
    from .core import ShrinkAnalysis
    analysis = ShrinkAnalysis(
        n_transistors=args.transistors,
        design_density=args.density,
        wafer_cost=WaferCostModel(reference_cost_dollars=args.c0,
                                  cost_growth_rate=args.x),
        mature_density_per_cm2=args.defect_density)
    old = analysis.evaluate_node(args.from_node)
    new = analysis.evaluate_node(args.to_node)
    gain = analysis.shrink_gain_at_maturity(args.from_node, args.to_node) \
        if args.to_node < args.from_node else float("nan")
    rows = [
        ("die area old/new [cm^2]",
         f"{old.die_area_cm2:.3f} / {new.die_area_cm2:.3f}"),
        ("dies per wafer old/new",
         f"{old.dies_per_wafer} / {new.dies_per_wafer}"),
        ("yield old/new",
         f"{old.yield_value:.3f} / {new.yield_value:.3f}"),
        ("wafer cost old/new [$]",
         f"{old.wafer_cost_dollars:.0f} / {new.wafer_cost_dollars:.0f}"),
        ("mature cost gain (old/new)", f"{gain:.2f}x"),
    ]
    print(ascii_table(("quantity", "value"), rows))


def _cmd_wafermap(args: argparse.Namespace) -> None:
    import numpy as np

    from .geometry import Die
    from .yieldsim import SpotDefectSimulator
    from .analysis import render_wafer_map
    sim = SpotDefectSimulator(
        Wafer(radius_cm=args.wafer_radius),
        Die.square(args.die_side),
        defect_density_per_cm2=args.defect_density,
        clustering_alpha=args.alpha)
    wmap = sim.simulate_wafer(np.random.default_rng(args.seed))
    print(render_wafer_map(wmap, show_counts=args.counts))


def _cmd_simulate(args: argparse.Namespace) -> None:
    from .analysis import render_lot_summary
    from .batch import dies_per_wafer_batch
    from .geometry import Die
    from .yieldsim import (
        NegativeBinomialYield,
        PoissonYield,
        SpotDefectSimulator,
    )
    sim = SpotDefectSimulator(
        Wafer(radius_cm=args.wafer_radius),
        Die.square(args.die_side),
        defect_density_per_cm2=args.defect_density,
        clustering_alpha=args.alpha)
    lot = sim.simulate_lot(args.lot_size, seed=args.seed,
                           workers=args.workers)
    print(render_lot_summary(lot))
    model = PoissonYield() if args.alpha is None \
        else NegativeBinomialYield(alpha=args.alpha)
    y_cf = model.yield_for_area(sim.die.area_cm2,
                                sim.expected_killer_density())
    # The eq.-(4) centered-grid count, for comparison against the
    # simulator's phase-optimized placement (runs on the batch engine,
    # so the shared BatchCache sees this lookup).
    n_eq4 = int(dies_per_wafer_batch(sim.wafer, sim.die.width_cm,
                                     sim.die.height_cm)[()])
    print(ascii_table(("quantity", "value"), [
        ("wafers", float(lot.n_wafers)),
        ("workers", float(args.workers if args.workers else 1)),
        ("dies per wafer", float(lot[0].n_dies if len(lot) else 0)),
        ("dies per wafer (eq. 4 grid)", float(n_eq4)),
        ("defects thrown", float(lot.n_defects_total)),
        ("lot yield (Monte Carlo)", lot.yield_fraction),
        ("closed-form yield", y_cf),
        ("abs difference", abs(lot.yield_fraction - y_cf)),
    ]))


def _cmd_fit_yield(args: argparse.Namespace) -> None:
    import json

    from .geometry import Die
    from .yieldsim import SpotDefectSimulator, fit_yield_models
    die = Die.square(args.die_side)
    sim = SpotDefectSimulator(
        Wafer(radius_cm=args.wafer_radius), die,
        defect_density_per_cm2=args.defect_density,
        clustering_alpha=args.wafer_alpha,
        lot_alpha=args.lot_alpha)
    lots = sim.simulate_lots(args.lots, args.wafers, seed=args.seed,
                             workers=args.workers)
    laws = [v.strip() for v in args.laws.split(",")] if args.laws else None
    report = fit_yield_models(lots, die.area_cm2, laws=laws)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
        return
    print(f"fit over {report.n_lots} lots / {report.n_wafers} wafers / "
          f"{report.n_dies} dies ({report.n_defects} killer defects)")
    print(ascii_table(
        ("rank", "law", "k", "logL", "AIC", "BIC", "dAIC"),
        [(rank, name, k, f"{ll:.2f}", f"{aic:.2f}", f"{bic:.2f}",
          f"{daic:.2f}")
         for rank, name, k, ll, aic, bic, daic in report.table_rows()]))
    best = report.best
    params = ", ".join(f"{k}={v:.4g}" for k, v in best.params.items())
    print(f"best by AIC: {best.name} ({params})")


def _cmd_replay(args: argparse.Namespace) -> None:
    from .replay import run_all
    names = [v.strip() for v in args.configs.split(",") if v.strip()]
    if not names:
        raise ParameterError("--configs must name at least one config")
    summary = run_all(args.log, args.run_dir, names=names,
                      workers=args.workers, mode=args.mode,
                      speed=args.speed, profile=args.profile,
                      timeout=args.timeout)
    rows = []
    for r in summary["results"]:
        rows.append((r.config.name, f"{r.wall_s:.3f}", f"{r.qps:.0f}",
                     f"{r.p50_ms:.2f}", f"{r.p95_ms:.2f}",
                     f"{r.p99_ms:.2f}", f"{r.mean_occupancy:.2f}",
                     str(r.mismatches)))
    print(ascii_table(
        ("config", "wall s", "qps", "p50 ms", "p95 ms", "p99 ms",
         "occupancy", "mismatches"), rows))
    print(f"run dir: {summary['run_dir']}")
    print(f"  results: {summary['csv']}")
    print(f"  report:  {summary['report']}")
    if summary["mismatches"]:
        raise ReproError(
            f"{summary['mismatches']} replayed cost(s) were not bitwise "
            f"equal to the recording (see raw/*.json)")
    print("parity: all replayed costs bitwise equal to the recording")


def _cmd_report(args: argparse.Namespace) -> None:
    from .analysis.reproduce import main as report_main
    report_main([args.output] if args.output else [])


def _cmd_serve(args: argparse.Namespace) -> None:
    from .serve.http import run_server
    run_server(host=args.host, port=args.port,
               backend=args.serve_backend, workers=args.serve_workers,
               record=args.record,
               max_batch_size=args.max_batch_size,
               max_queue_depth=args.max_queue_depth,
               density=args.density, yield0=args.yield0, c0=args.c0,
               x=args.x, wafer_radius=args.wafer_radius)


def _cmd_loadgen(args: argparse.Namespace) -> None:
    from .loadgen import build_workload, format_report, run_load
    mix = None
    if args.mix:
        mix = {}
        for part in args.mix.split(","):
            kind, _, fraction = part.partition("=")
            if not fraction:
                raise ParameterError(
                    f"--mix parts look like kind=fraction, got {part!r}")
            mix[kind.strip()] = float(fraction)
    specs = build_workload(args.requests, mix=mix,
                           bulk_size=args.bulk_size, seed=args.seed)
    result = run_load(args.host, args.port, specs, rps=args.rps,
                      connections=args.connections,
                      timeout_s=args.timeout, seed=args.seed,
                      verify=not args.no_verify)
    print(format_report(result))
    if result.mismatches:
        raise ReproError(
            f"{result.mismatches} HTTP-served cost(s) were not bitwise "
            f"equal to the scalar reference")


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maly DAC-1994 silicon cost model — reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every subcommand (docs/observability.md).
    obs_args = argparse.ArgumentParser(add_help=False)
    obs_args.add_argument("--trace", metavar="FILE", default=None,
                          help="write the run's span trace as JSON lines")
    obs_args.add_argument("--metrics", action="store_true",
                          help="print the metrics table after the command")

    def add_parser(name, **kwargs):
        return sub.add_parser(name, parents=[obs_args], **kwargs)

    fig = add_parser("figure", help="print a reproduced figure")
    fig.add_argument("name", choices=sorted(_FIGURES) + ["fig8"])

    tab = add_parser("table", help="print a reproduced table")
    tab.add_argument("name", choices=sorted(_TABLES))

    cost = add_parser("cost", help="price a design with eq. (1)")
    cost.add_argument("--transistors", type=float, default=None,
                      help="N_tr (required unless --input provides it)")
    cost.add_argument("--feature-size", type=float, default=None,
                      help="lambda in microns (required unless --input "
                           "provides it)")
    cost.add_argument("--density", type=float, default=None,
                      help="d_d in lambda^2 per transistor (required "
                           "unless --input provides it)")
    cost.add_argument("--yield0", type=float, default=0.7,
                      help="reference yield for a 1 cm^2 die")
    cost.add_argument("--c0", type=float, default=500.0,
                      help="cost of the 1 um reference wafer [$]")
    cost.add_argument("--x", type=float, default=1.8,
                      help="wafer cost growth per generation")
    cost.add_argument("--wafer-radius", type=float, default=7.5,
                      help="wafer radius [cm]")
    cost.add_argument("--input", metavar="FILE", default=None,
                      help="price every point in FILE (.csv or .json; "
                           "fields transistors/feature_size and optional "
                           "density/yield0 overrides) through the "
                           "micro-batching service")
    cost.add_argument("--format", choices=("csv", "json"), default="csv",
                      help="batch output format (with --input)")
    cost.add_argument("--prewarm", metavar="FILE", default=None,
                      help="replay recorded queries into the batch cache "
                           "before serving: a recorder JSONL traffic log "
                           "(auto-detected) or a points file (CSV/JSON, "
                           "same fields as --input); may be used without "
                           "--input")
    cost.add_argument("--record", metavar="FILE", default=None,
                      help="append every served query to FILE as a JSONL "
                           "traffic log (replayable via 'repro replay')")
    cost.add_argument("--serve-backend", default="auto",
                      choices=("auto", "thread", "process"),
                      help="execution backend for batch serving")
    cost.add_argument("--serve-workers", type=int, default=1,
                      help="worker count for the serving backend "
                           "(threads or processes)")

    opt = add_parser("optimize",
                         help="cost-optimal feature size for a die area")
    opt.add_argument("--die-area", type=float, default=None,
                     help="die area [cm^2] (required unless --input)")
    opt.add_argument("--input", metavar="FILE", default=None,
                     help="optimize every die_area in FILE (.csv or .json)")
    opt.add_argument("--format", choices=("csv", "json"), default="csv",
                     help="batch output format (with --input)")
    opt.add_argument("--workers", type=int, default=None,
                     help="worker count for the batch coarse-scan sweep "
                          "(with --input; results are identical for any "
                          "value)")
    opt.add_argument("--backend", default="auto",
                     choices=("auto", "thread", "process"),
                     help="sweep backend for the batch coarse scan")

    sweep = add_parser(
        "sweep",
        help="tiled (lambda, N_tr) cost landscape, optionally on the "
             "shared-memory process pool")
    sweep.add_argument("--ntr-lo", type=float, default=1e5,
                       help="smallest transistor count (geometric axis)")
    sweep.add_argument("--ntr-hi", type=float, default=1e7,
                       help="largest transistor count")
    sweep.add_argument("--ntr-points", type=int, default=200,
                       help="points along the N_tr axis")
    sweep.add_argument("--lam-lo", type=float, default=0.3,
                       help="smallest feature size [um]")
    sweep.add_argument("--lam-hi", type=float, default=2.0,
                       help="largest feature size [um]")
    sweep.add_argument("--lam-points", type=int, default=200,
                       help="points along the lambda axis")
    sweep.add_argument("--tile-size", type=int, default=65536,
                       help="target points per tile")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker count (results are identical for any "
                            "value)")
    sweep.add_argument("--backend", default="auto",
                       choices=("auto", "thread", "process"),
                       help="tile execution backend")
    sweep.add_argument("--checkpoint", metavar="DIR", default=None,
                       help="flush each finished tile to DIR so a killed "
                            "sweep can resume")
    sweep.add_argument("--resume", action="store_true",
                       help="continue from the tiles already in "
                            "--checkpoint DIR")
    sweep.add_argument("--output", metavar="FILE", default=None,
                       help="save the cost grid as a .npy array")
    sweep.add_argument("--spec", default="fab",
                       choices=("fab", "chiplet"),
                       help="sweep specification: 'fab' is the (N_tr, "
                            "lambda) Fig.-8 landscape; 'chiplet' is the "
                            "(k, N_tr) crossover grid at fixed lambda "
                            "(--lam-lo)")
    sweep.add_argument("--k-max", type=int, default=8,
                       help="largest chiplet count (with --spec chiplet)")

    chiplet = add_parser(
        "chiplet",
        help="price a k-chiplet assembly, or sweep the "
             "monolithic-vs-chiplet crossover (see docs/chiplet.md)")
    chiplet.add_argument("--transistors", type=float, default=1e7,
                         help="system transistor budget N_tr")
    chiplet.add_argument("--feature-size", type=float, default=0.8,
                         help="lambda in microns")
    chiplet.add_argument("--chiplets", type=int, default=4,
                         help="number of chiplets the budget is split "
                              "across")
    chiplet.add_argument("--packaging", default="organic",
                         choices=("organic", "interposer", "bare"),
                         help="packaging technology (docs/chiplet.md)")
    chiplet.add_argument("--probe-coverage", type=float, default=0.95,
                         help="wafer-probe fault coverage in [0, 1]")
    chiplet.add_argument("--sweep", action="store_true",
                         help="sweep the (k, N_tr) crossover grid instead "
                              "of pricing one assembly")
    chiplet.add_argument("--k-max", type=int, default=8,
                         help="largest chiplet count (with --sweep)")
    chiplet.add_argument("--ntr-lo", type=float, default=1e5,
                         help="smallest transistor budget (with --sweep)")
    chiplet.add_argument("--ntr-hi", type=float, default=1e9,
                         help="largest transistor budget (with --sweep)")
    chiplet.add_argument("--ntr-points", type=int, default=200,
                         help="points along the budget axis (with --sweep)")
    chiplet.add_argument("--tile-size", type=int, default=65536,
                         help="target points per sweep tile")
    chiplet.add_argument("--workers", type=int, default=None,
                         help="worker count (results are identical for "
                              "any value)")
    chiplet.add_argument("--backend", default="auto",
                         choices=("auto", "thread", "process"),
                         help="tile execution backend (with --sweep)")
    chiplet.add_argument("--checkpoint", metavar="DIR", default=None,
                         help="flush each finished tile to DIR so a "
                              "killed sweep can resume")
    chiplet.add_argument("--resume", action="store_true",
                         help="continue from the tiles already in "
                              "--checkpoint DIR")
    chiplet.add_argument("--output", metavar="FILE", default=None,
                         help="save the sweep cost grid as a .npy array")

    scen = add_parser("scenarios",
                          help="Scenario #1 vs #2 cost sweep")
    scen.add_argument("--lam-lo", type=float, default=0.25)
    scen.add_argument("--lam-hi", type=float, default=1.0)

    shrink = add_parser("shrink",
                            help="evaluate moving a product between nodes")
    shrink.add_argument("--transistors", type=float, required=True)
    shrink.add_argument("--density", type=float, required=True)
    shrink.add_argument("--from-node", type=float, required=True,
                        help="current lambda [um]")
    shrink.add_argument("--to-node", type=float, required=True,
                        help="target lambda [um]")
    shrink.add_argument("--defect-density", type=float, default=0.05,
                        help="mature killer density at 1 um [1/cm^2]")
    shrink.add_argument("--c0", type=float, default=500.0)
    shrink.add_argument("--x", type=float, default=1.4)

    wmap = add_parser("wafermap",
                          help="simulate and draw one wafer map")
    wmap.add_argument("--die-side", type=float, default=1.0,
                      help="square die side [cm]")
    wmap.add_argument("--defect-density", type=float, default=0.8,
                      help="killer defects per cm^2")
    wmap.add_argument("--wafer-radius", type=float, default=7.5)
    wmap.add_argument("--alpha", type=float, default=None,
                      help="gamma clustering parameter (omit = Poisson)")
    wmap.add_argument("--seed", type=int, default=0)
    wmap.add_argument("--counts", action="store_true",
                      help="print defect counts instead of pass/fail")

    simulate = add_parser(
        "simulate",
        help="Monte Carlo a whole lot, optionally sharded across processes")
    simulate.add_argument("--lot-size", type=int, default=10,
                          help="number of wafers in the lot")
    simulate.add_argument("--die-side", type=float, default=1.0,
                          help="square die side [cm]")
    simulate.add_argument("--defect-density", type=float, default=0.8,
                          help="killer defects per cm^2")
    simulate.add_argument("--wafer-radius", type=float, default=7.5)
    simulate.add_argument("--alpha", type=float, default=None,
                          help="gamma clustering parameter (omit = Poisson)")
    simulate.add_argument("--seed", type=int, default=0,
                          help="root seed; wafers get spawned child streams")
    simulate.add_argument("--workers", type=int, default=None,
                          help="process count for lot sharding (results are "
                               "identical for any value)")

    fit = add_parser(
        "fit-yield",
        help="simulate clustered lots and rank yield laws by AIC/BIC")
    fit.add_argument("--lots", type=int, default=8,
                     help="number of independent lots to simulate")
    fit.add_argument("--wafers", type=int, default=5,
                     help="wafers per lot")
    fit.add_argument("--die-side", type=float, default=1.0,
                     help="square die side [cm]")
    fit.add_argument("--defect-density", type=float, default=0.8,
                     help="mean killer defects per cm^2")
    fit.add_argument("--wafer-radius", type=float, default=7.5)
    fit.add_argument("--wafer-alpha", type=float, default=1.5,
                     help="wafer-level gamma clustering shape "
                          "(omit-able: pass nothing for the default, "
                          "use a large value to approach Poisson)")
    fit.add_argument("--lot-alpha", type=float, default=2.0,
                     help="lot-level gamma hyper-distribution shape")
    fit.add_argument("--seed", type=int, default=0,
                     help="root seed; lots and wafers get spawned "
                          "child streams")
    fit.add_argument("--workers", type=int, default=None,
                     help="process count for lot sharding (results "
                          "are identical for any value)")
    fit.add_argument("--laws", default=None,
                     help="comma-separated subset of laws to fit "
                          "(default: all)")
    fit.add_argument("--format", choices=("table", "json"),
                     default="table", help="output format")

    replay = add_parser(
        "replay",
        help="replay a recorded traffic log against scheduler configs "
             "and write a run-dir report")
    replay.add_argument("--log", metavar="FILE", required=True,
                        help="recorder JSONL traffic log (from "
                             "'cost --record' or CostService(record=...))")
    replay.add_argument("--run-dir", metavar="DIR", required=True,
                        help="output directory: raw/*.json, profile.json, "
                             "results.csv, report.md")
    replay.add_argument("--configs", default="thread,process,auto,tuned",
                        help="comma-separated subset of "
                             "thread,process,auto,tuned")
    replay.add_argument("--workers", type=int, default=2,
                        help="worker count for every replayed config")
    replay.add_argument("--mode", choices=("open", "closed"),
                        default="closed",
                        help="closed: submit as fast as accepted; open: "
                             "honor recorded arrival times")
    replay.add_argument("--speed", type=float, default=1.0,
                        help="time-scale for open-loop arrivals "
                             "(2.0 = replay twice as fast)")
    replay.add_argument("--profile", metavar="FILE", default=None,
                        help="tuning profile JSON for the 'tuned' config "
                             "(default: learn one from the other configs' "
                             "telemetry)")
    replay.add_argument("--timeout", type=float, default=300.0,
                        help="drain deadline per config [s]")

    serve = add_parser(
        "serve",
        help="serve cost queries over HTTP (see docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--backend", dest="serve_backend", default="auto",
                       choices=("auto", "thread", "process", "tuned"),
                       help="scheduler execution backend")
    serve.add_argument("--workers", dest="serve_workers", type=int,
                       default=1, help="worker count for the backend")
    serve.add_argument("--record", metavar="FILE", default=None,
                       help="append every served query to FILE as a JSONL "
                            "traffic log (replayable via 'repro replay')")
    serve.add_argument("--max-batch-size", type=int, default=256,
                       help="scheduler flush threshold")
    serve.add_argument("--max-queue-depth", type=int, default=10_000,
                       help="queue bound; beyond it requests get 429")
    serve.add_argument("--density", type=float, default=150.0,
                       help="default d_d for bare point-field bodies")
    serve.add_argument("--yield0", type=float, default=0.7,
                       help="default 1 cm^2 reference yield")
    serve.add_argument("--c0", type=float, default=500.0,
                       help="cost of the 1 um reference wafer [$]")
    serve.add_argument("--x", type=float, default=1.8,
                       help="wafer cost growth per generation")
    serve.add_argument("--wafer-radius", type=float, default=7.5,
                       help="wafer radius [cm]")

    loadgen = add_parser(
        "loadgen",
        help="open-loop load generator against a running 'repro serve'")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True,
                         help="port of the server under test")
    loadgen.add_argument("--rps", type=float, default=200.0,
                         help="target Poisson arrival rate [req/s]")
    loadgen.add_argument("--requests", type=int, default=200,
                         help="number of requests to issue")
    loadgen.add_argument("--connections", type=int, default=8,
                         help="keep-alive client connection pool size")
    loadgen.add_argument("--mix", default=None,
                         help="endpoint mix, e.g. 'cost=0.6,bulk=0.2,"
                              "optimize=0.1,chiplet=0.1'")
    loadgen.add_argument("--bulk-size", type=int, default=32,
                         help="points per /v1/cost/bulk request")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-request timeout [s]")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="workload + arrival-process seed")
    loadgen.add_argument("--no-verify", action="store_true",
                         help="skip the bitwise parity check against the "
                              "scalar reference")

    report = add_parser("report",
                        help="write the full reproduction report")
    report.add_argument("output", nargs="?", default=None,
                        help="output file (default: stdout)")
    return parser


def _emit_observability(args: argparse.Namespace) -> None:
    # Trace file and metrics table, after the command's own output.
    # Runs even when the command errored — a partial trace of a failed
    # run is exactly when you want one.
    if args.trace and _obs.tracing_enabled():
        n = _obs.write_trace_jsonl(args.trace)
        print(f"wrote {n} spans to {args.trace}", file=sys.stderr)
    if _obs.metrics_enabled():
        rows = [(name, float(value)) for name, value in _obs.metrics.rows()]
        print()
        if rows:
            print(ascii_table(("metric", "value"), rows))
        else:
            print("(no metrics recorded)")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.trace or args.metrics:
        _obs.enable(trace=_obs.tracing_enabled() or bool(args.trace),
                    metrics=_obs.metrics_enabled() or args.metrics)
    status = 0
    try:
        with _obs.span(f"cli.{args.command}"):
            if args.command == "figure":
                _print_figure(args.name)
            elif args.command == "table":
                _print_table(args.name)
            elif args.command == "cost":
                _cmd_cost(args)
            elif args.command == "optimize":
                _cmd_optimize(args)
            elif args.command == "sweep":
                _cmd_sweep(args)
            elif args.command == "chiplet":
                _cmd_chiplet(args)
            elif args.command == "scenarios":
                _cmd_scenarios(args)
            elif args.command == "shrink":
                _cmd_shrink(args)
            elif args.command == "wafermap":
                _cmd_wafermap(args)
            elif args.command == "simulate":
                _cmd_simulate(args)
            elif args.command == "fit-yield":
                _cmd_fit_yield(args)
            elif args.command == "replay":
                _cmd_replay(args)
            elif args.command == "serve":
                _cmd_serve(args)
            elif args.command == "loadgen":
                _cmd_loadgen(args)
            elif args.command == "report":
                _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 2
    _emit_observability(args)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
