"""System partitioning with per-partition feature size — Sec. IV.B.

The paper: "by including in the IC system design process such variables
as sizes of the system's partitions and minimum feature sizes of each
partition one can minimize the overall system cost.  It is important to
note that the optimum solution may not call for the smallest possible
(and expensive) feature size."

A :class:`PartitionedSystem` is a set of partitions, each with a
transistor budget and a design density (a cache partition packs near
d_d ≈ 45, a bus unit near 400 — Table 1).  Each partition becomes its
own die, manufactured at its own λ on a fab characterized like Fig. 8's.
Optimizing λ per partition, and sweeping how many dies the budget is
split into, yields the cost-optimal system implementation that Sec. VI's
"smart substrate" MCM would then assemble.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.optimization import (
    FIG8_FAB,
    FabCharacterization,
    transistor_cost_full,
)
from ..errors import ParameterError
from ..units import require_positive


@dataclass(frozen=True)
class Partition:
    """One system partition destined for its own die.

    ``design_density`` may differ per partition (Table 1: caches pack
    5–10× denser than control logic), which is exactly what makes
    per-partition λ choices non-uniform.
    """

    name: str
    n_transistors: float
    design_density: float

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("design_density", self.design_density)


@dataclass(frozen=True)
class PartitionChoice:
    """An optimized implementation of one partition."""

    partition: Partition
    feature_size_um: float
    cost_per_transistor_dollars: float

    @property
    def die_cost_dollars(self) -> float:
        """Total silicon cost of the partition's die."""
        return self.cost_per_transistor_dollars * self.partition.n_transistors


@dataclass(frozen=True)
class PartitionedSystem:
    """A system as a tuple of partitions plus the fab that builds them."""

    partitions: tuple[Partition, ...]
    fab: FabCharacterization = FIG8_FAB

    def __post_init__(self) -> None:
        if not self.partitions:
            raise ParameterError("partitions must be non-empty")

    @property
    def total_transistors(self) -> float:
        """Sum of all partition transistor budgets."""
        return sum(p.n_transistors for p in self.partitions)

    def cost_at_uniform_lambda(self, feature_size_um: float) -> float:
        """Total system silicon cost with one λ for every partition.

        The monolithic-SoC baseline the per-partition optimization is
        judged against.
        """
        require_positive("feature_size_um", feature_size_um)
        total = 0.0
        for part in self.partitions:
            fab = _fab_with_density(self.fab, part.design_density)
            ctr = transistor_cost_full(part.n_transistors, feature_size_um, fab)
            if math.isinf(ctr):
                raise ParameterError(
                    f"partition {part.name!r} infeasible at {feature_size_um} um")
            total += ctr * part.n_transistors
        return total


def _fab_with_density(fab: FabCharacterization, design_density: float,
                      ) -> FabCharacterization:
    """The fab characterization with the partition's own d_d substituted."""
    return FabCharacterization(
        cost_growth_rate=fab.cost_growth_rate,
        reference_cost_dollars=fab.reference_cost_dollars,
        wafer_radius_cm=fab.wafer_radius_cm,
        design_density=design_density,
        defect_coefficient=fab.defect_coefficient,
        size_exponent_p=fab.size_exponent_p)


def optimize_partition_feature_sizes(system: PartitionedSystem, *,
                                     lam_lo_um: float = 0.3,
                                     lam_hi_um: float = 1.2,
                                     n_grid: int = 91,
                                     ) -> list[PartitionChoice]:
    """Choose each partition's λ independently to minimize its die cost.

    Grid search per partition (the landscape can hold multiple valleys;
    a grid is robust and cheap at this scale).  Returns one
    :class:`PartitionChoice` per partition; total system cost is the sum
    of their die costs.
    """
    if not lam_lo_um < lam_hi_um:
        raise ParameterError("lam_lo_um must be < lam_hi_um")
    if n_grid < 3:
        raise ParameterError(f"n_grid must be >= 3, got {n_grid}")
    step = (lam_hi_um - lam_lo_um) / (n_grid - 1)
    choices = []
    for part in system.partitions:
        fab = _fab_with_density(system.fab, part.design_density)
        best_lam, best_cost = None, math.inf
        for k in range(n_grid):
            lam = lam_lo_um + k * step
            ctr = transistor_cost_full(part.n_transistors, lam, fab)
            if ctr < best_cost:
                best_lam, best_cost = lam, ctr
        if best_lam is None or math.isinf(best_cost):
            raise ParameterError(
                f"partition {part.name!r} has no feasible feature size in "
                f"[{lam_lo_um}, {lam_hi_um}] um")
        choices.append(PartitionChoice(
            partition=part, feature_size_um=best_lam,
            cost_per_transistor_dollars=best_cost))
    return choices


def optimal_partition_count(total_transistors: float, design_density: float, *,
                            fab: FabCharacterization = FIG8_FAB,
                            max_partitions: int = 16,
                            lam_lo_um: float = 0.3,
                            lam_hi_um: float = 1.2,
                            per_die_assembly_cost: float = 0.0,
                            ) -> tuple[int, float, float]:
    """Sweep the number of equal dies a budget is split into.

    Splitting helps yield (smaller dies) but multiplies assembly cost
    and loses wafer-edge efficiency.  Returns ``(best_count, best_total
    cost, single_die_cost)`` where costs include
    ``per_die_assembly_cost`` per die.  Raises if not even one feasible
    split exists.
    """
    require_positive("total_transistors", total_transistors)
    require_positive("design_density", design_density)
    if max_partitions < 1:
        raise ParameterError(f"max_partitions must be >= 1, got {max_partitions}")

    def total_cost(n_parts: int) -> float:
        per_die = total_transistors / n_parts
        system = PartitionedSystem(
            partitions=tuple(
                Partition(name=f"part-{i}", n_transistors=per_die,
                          design_density=design_density)
                for i in range(n_parts)),
            fab=fab)
        try:
            choices = optimize_partition_feature_sizes(
                system, lam_lo_um=lam_lo_um, lam_hi_um=lam_hi_um)
        except ParameterError:
            return math.inf
        return sum(c.die_cost_dollars for c in choices) \
            + per_die_assembly_cost * n_parts

    costs = {n: total_cost(n) for n in range(1, max_partitions + 1)}
    feasible = {n: c for n, c in costs.items() if math.isfinite(c)}
    if not feasible:
        raise ParameterError("no feasible partition count")
    best_n = min(feasible, key=feasible.get)  # type: ignore[arg-type]
    single = costs.get(1, math.inf)
    return best_n, feasible[best_n], single
