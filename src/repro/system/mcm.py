"""Multi-chip module economics — the Sec.-VI smart-substrate argument.

The paper: "by applying active silicon substrate (i.e. very expensive
substrate) one can build a smart substrate system which can minimize
the overall system cost by performing self testing and enabling cost
savings impossible with cheaper but passive substrates.  But
traditional MCM strategies focus on the cost of the substrate itself."

Model: a module assembles N bare dies onto a substrate.  Each die
arrives good with probability ``incoming_quality`` (its yield, raised
by whatever die-level testing was paid for — see
:mod:`repro.system.kgd`).  The module works only if all dies are good;
a failed module is either scrapped or reworked (bad die located and
replaced) at a cost that depends on the substrate's diagnostic ability:
a *smart* substrate locates the bad die itself (cheap, reliable rework),
a *passive* substrate needs expensive external diagnosis and more
rework iterations.  The headline comparison — substrate A is dearer
than substrate B, yet total module cost with A is lower — is exactly
the paper's point, and is asserted by the MCM example and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive


@dataclass(frozen=True)
class McmSubstrate:
    """An MCM substrate option.

    Parameters
    ----------
    name:
        Label ("passive ceramic", "active silicon", ...).
    cost_dollars:
        Substrate cost per module.
    self_test:
        Whether the substrate can locate a failing die itself (the
        paper's smart-substrate capability [30]).
    diagnosis_cost_dollars:
        Cost of locating a bad die on a failed module.  Smart
        substrates have (near-)zero; passive substrates pay external
        diagnosis (probing, schmoo, engineering time).
    rework_success:
        Probability one rework attempt (remove + replace the located
        die) actually fixes the module.
    """

    name: str
    cost_dollars: float
    self_test: bool = False
    diagnosis_cost_dollars: float = 0.0
    rework_success: float = 0.9

    def __post_init__(self) -> None:
        require_positive("cost_dollars", self.cost_dollars)
        require_nonnegative("diagnosis_cost_dollars", self.diagnosis_cost_dollars)
        require_fraction("rework_success", self.rework_success,
                         inclusive_low=False)


@dataclass(frozen=True)
class McmCostModel:
    """Assembly economics of one module design on one substrate.

    Parameters
    ----------
    substrate:
        The substrate option.
    n_dies:
        Number of dies assembled per module.
    die_cost_dollars:
        Cost of one bare die (silicon + any die-level test already paid).
    incoming_quality:
        Probability an assembled die is good (die yield × test quality).
    assembly_cost_dollars:
        Attach/bond cost per module (all dies).
    replacement_die_cost_dollars:
        Cost of the spare die consumed by one rework (defaults to
        ``die_cost_dollars`` when None).
    max_rework_attempts:
        Rework attempts before a module is scrapped.
    """

    substrate: McmSubstrate
    n_dies: int
    die_cost_dollars: float
    incoming_quality: float
    assembly_cost_dollars: float = 20.0
    replacement_die_cost_dollars: float | None = None
    max_rework_attempts: int = 2

    def __post_init__(self) -> None:
        if self.n_dies < 1:
            raise ParameterError(f"n_dies must be >= 1, got {self.n_dies}")
        require_positive("die_cost_dollars", self.die_cost_dollars)
        require_fraction("incoming_quality", self.incoming_quality,
                         inclusive_low=False)
        require_nonnegative("assembly_cost_dollars", self.assembly_cost_dollars)
        if self.replacement_die_cost_dollars is not None:
            require_positive("replacement_die_cost_dollars",
                             self.replacement_die_cost_dollars)
        if self.max_rework_attempts < 0:
            raise ParameterError("max_rework_attempts must be >= 0")

    @property
    def first_pass_module_yield(self) -> float:
        """Probability the module works before any rework: q^N."""
        return self.incoming_quality ** self.n_dies

    @property
    def _replacement_cost(self) -> float:
        return self.replacement_die_cost_dollars \
            if self.replacement_die_cost_dollars is not None \
            else self.die_cost_dollars

    def _base_build_cost(self) -> float:
        """Materials + assembly of one module attempt."""
        return self.substrate.cost_dollars \
            + self.n_dies * self.die_cost_dollars \
            + self.assembly_cost_dollars

    def expected_cost_and_yield(self) -> tuple[float, float]:
        """Expected cost per *started* module and final module yield.

        A failed module goes through up to ``max_rework_attempts``
        cycles of (diagnose, replace one bad die); each cycle costs
        diagnosis + one replacement die + a fraction of assembly, and
        succeeds in making the module good with probability
        ``rework_success × q^(k−1)``-ish — we use the simplification
        that one cycle fixes one bad die and the module is good when no
        bad dies remain.  The expected number of bad dies on a failed
        module is small for high q, so single-die-per-cycle is a good
        approximation at the quality levels MCMs require.
        """
        q = self.incoming_quality
        n = self.n_dies
        build = self._base_build_cost()
        rework_cycle_cost = self.substrate.diagnosis_cost_dollars \
            + self._replacement_cost + 0.25 * self.assembly_cost_dollars

        # State: expected number of bad dies if module failed.
        p_good = q ** n
        cost = build
        yield_now = p_good
        p_failed = 1.0 - p_good
        # Expected bad dies conditional on failure:
        mean_bad = n * (1.0 - q) / p_failed if p_failed > 0 else 0.0
        for _ in range(self.max_rework_attempts):
            if p_failed <= 1e-15:
                break
            cost += p_failed * rework_cycle_cost
            # One cycle: locates and replaces one bad die; replacement is
            # good with prob q; cycle mechanically succeeds with
            # rework_success.  Module becomes good if exactly one bad die
            # remained and the cycle worked.
            p_one_bad = (n * (1.0 - q) * q ** (n - 1)) / p_failed \
                if p_failed > 0 else 0.0
            p_fixed = p_failed * min(p_one_bad, 1.0) \
                * self.substrate.rework_success * q
            yield_now += p_fixed
            p_failed -= p_fixed
            mean_bad = max(mean_bad - 1.0, 0.0)
        return cost, yield_now

    def cost_per_good_module(self) -> float:
        """Expected cost divided by final module yield — the paper's
        system-level figure of merit."""
        cost, final_yield = self.expected_cost_and_yield()
        if final_yield <= 0.0:
            raise ParameterError("module yield is zero; cost per good module "
                                 "is undefined")
        return cost / final_yield


def compare_substrates(passive: McmCostModel, smart: McmCostModel) -> dict[str, float]:
    """Side-by-side comparison dict for two substrate options.

    Used by the MCM example and bench to reproduce the paper's claim
    that the *expensive* active substrate can win at system level.
    """
    p_cost = passive.cost_per_good_module()
    s_cost = smart.cost_per_good_module()
    return {
        "passive_substrate_dollars": passive.substrate.cost_dollars,
        "smart_substrate_dollars": smart.substrate.cost_dollars,
        "passive_cost_per_good_module": p_cost,
        "smart_cost_per_good_module": s_cost,
        "smart_saves": p_cost - s_cost,
    }
