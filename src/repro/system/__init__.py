"""System-level cost optimization — the Sec.-VI agenda made executable.

The paper's closing argument is that cost must be optimized at the
*system* level: choose partition sizes and a feature size per partition
(Sec. IV.B), weigh MCM substrates by system cost rather than substrate
cost, and price test escapes into known-good-die decisions.

* :mod:`~repro.system.partitioning` — split a transistor budget into
  dies and pick each die's λ to minimize total silicon cost.
* :mod:`~repro.system.mcm` — multi-chip module assembly economics,
  passive vs. smart (self-testing) substrates [30, 31].
* :mod:`~repro.system.kgd` — known-good-die: how untested bare dies
  tax module yield, and what a KGD test is worth.
* :mod:`~repro.system.chiplet` — partition N_tr across k chiplets:
  KGD probe, packaging/interposer cost, per-join bonding yield, and
  the monolithic-vs-chiplet crossover search.
"""

from .partitioning import (
    Partition,
    PartitionedSystem,
    optimize_partition_feature_sizes,
    optimal_partition_count,
)
from .mcm import McmSubstrate, McmCostModel
from .kgd import KgdEconomics
from .package_selection import (
    PackagingCostModel,
    PackagingStrategy,
    crossover_points,
)
from .chiplet import (
    BARE_ASSEMBLY,
    FREE_TEST,
    ORGANIC_SUBSTRATE,
    PACKAGING_TECHS,
    SILICON_INTERPOSER,
    ChipletCostBreakdown,
    ChipletCostModel,
    PackagingTech,
    monolithic_crossover,
)
from .cosynthesis import (
    PartitionDesign,
    SystemCostModel,
    SystemCostReport,
    optimize_system,
    silicon_only_baseline,
)

__all__ = [
    "Partition",
    "PartitionedSystem",
    "optimize_partition_feature_sizes",
    "optimal_partition_count",
    "McmSubstrate",
    "McmCostModel",
    "KgdEconomics",
    "PartitionDesign",
    "SystemCostModel",
    "SystemCostReport",
    "optimize_system",
    "silicon_only_baseline",
    "PackagingStrategy",
    "PackagingCostModel",
    "crossover_points",
    "PackagingTech",
    "ChipletCostBreakdown",
    "ChipletCostModel",
    "monolithic_crossover",
    "ORGANIC_SUBSTRATE",
    "SILICON_INTERPOSER",
    "BARE_ASSEMBLY",
    "PACKAGING_TECHS",
    "FREE_TEST",
]
