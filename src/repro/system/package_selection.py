"""Packaging-strategy selection: single chip vs MCM vs board.

Sec. VI laments that "typical MCMs are seen as more expensive way to
package small and medium size systems" — a statement about *crossovers*:
each packaging strategy has a size range where it wins.

* **Single chip**: no assembly, but the die grows with the system and
  yield collapses exponentially (eq. 6) — fine for small systems only.
* **MCM**: splits the system into moderate dies (good yield) on a
  substrate with assembly/rework cost — wins in the middle and
  especially once dies are cheap and substrates smart.
* **Board (single-chip packages)**: cheapest interconnect per die but
  pays packaging per chip plus board area and performance penalties —
  the default for big systems of the era.

:func:`packaging_cost` prices one strategy for a system transistor
budget by reusing the partitioning and MCM machinery;
:func:`crossover_points` sweeps the budget and reports where the
winning strategy changes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..core.optimization import FIG8_FAB, FabCharacterization
from ..errors import ParameterError
from ..system.mcm import McmCostModel, McmSubstrate
from ..system.partitioning import optimal_partition_count
from ..units import require_fraction, require_nonnegative, require_positive


class PackagingStrategy(enum.Enum):
    """The three packaging options of the Sec.-VI discussion."""

    SINGLE_CHIP = "single chip"
    MCM = "MCM"
    BOARD = "board"


@dataclass(frozen=True)
class PackagingCostModel:
    """Economic parameters shared by the strategy comparison.

    Parameters
    ----------
    fab:
        Fab characterization for silicon costs (each strategy buys its
        silicon from the same fab).
    design_density:
        d_d of the system logic.
    package_cost_dollars:
        Single-chip package (for the board strategy, per die; for the
        single-chip strategy, once).
    board_cost_per_die_dollars:
        Board area + connectors + assembly per packaged chip.
    mcm_substrate:
        Substrate used by the MCM strategy.
    mcm_assembly_dollars:
        MCM assembly per module.
    die_quality:
        Incoming bare-die quality for MCM assembly (probe-tested).
    max_dies:
        Partition-count cap for the multi-die strategies.
    """

    fab: FabCharacterization = FIG8_FAB
    design_density: float = 152.0
    package_cost_dollars: float = 8.0
    board_cost_per_die_dollars: float = 6.0
    mcm_substrate: McmSubstrate = field(default_factory=lambda: McmSubstrate(
        name="MCM substrate", cost_dollars=120.0, self_test=True,
        diagnosis_cost_dollars=10.0, rework_success=0.9))
    mcm_assembly_dollars: float = 25.0
    die_quality: float = 0.97
    max_dies: int = 12

    def __post_init__(self) -> None:
        require_positive("design_density", self.design_density)
        require_nonnegative("package_cost_dollars", self.package_cost_dollars)
        require_nonnegative("board_cost_per_die_dollars",
                            self.board_cost_per_die_dollars)
        require_nonnegative("mcm_assembly_dollars", self.mcm_assembly_dollars)
        require_fraction("die_quality", self.die_quality,
                         inclusive_low=False)
        if self.max_dies < 1:
            raise ParameterError("max_dies must be >= 1")

    def _silicon(self, n_transistors: float, *, single_die: bool,
                 ) -> tuple[int, float]:
        """(n_dies, total silicon cost) for a budget; inf cost if
        infeasible."""
        max_parts = 1 if single_die else self.max_dies
        try:
            n, cost, _single = optimal_partition_count(
                n_transistors, self.design_density, fab=self.fab,
                max_partitions=max_parts, per_die_assembly_cost=0.0)
        except ParameterError:
            return 0, math.inf
        return n, cost

    def packaging_cost(self, strategy: PackagingStrategy,
                       n_transistors: float) -> float:
        """Cost per good system under one strategy (inf if infeasible)."""
        require_positive("n_transistors", n_transistors)
        if strategy is PackagingStrategy.SINGLE_CHIP:
            _, silicon = self._silicon(n_transistors, single_die=True)
            if math.isinf(silicon):
                return math.inf
            return silicon + self.package_cost_dollars

        n_dies, silicon = self._silicon(n_transistors, single_die=False)
        if math.isinf(silicon):
            return math.inf
        per_die = silicon / n_dies

        if strategy is PackagingStrategy.BOARD:
            return silicon \
                + n_dies * (self.package_cost_dollars
                            + self.board_cost_per_die_dollars)

        if strategy is PackagingStrategy.MCM:
            if n_dies == 1:
                # An MCM of one die is a single chip with extra steps.
                return silicon + self.mcm_substrate.cost_dollars \
                    + self.mcm_assembly_dollars
            module = McmCostModel(
                substrate=self.mcm_substrate, n_dies=n_dies,
                die_cost_dollars=per_die,
                incoming_quality=self.die_quality,
                assembly_cost_dollars=self.mcm_assembly_dollars)
            return module.cost_per_good_module()
        raise ParameterError(f"unknown strategy {strategy!r}")

    def best_strategy(self, n_transistors: float,
                      ) -> tuple[PackagingStrategy, float]:
        """The cheapest feasible strategy for a system budget."""
        costs = {s: self.packaging_cost(s, n_transistors)
                 for s in PackagingStrategy}
        best = min(costs, key=costs.get)  # type: ignore[arg-type]
        if math.isinf(costs[best]):
            raise ParameterError(
                f"no strategy feasible for {n_transistors:.3g} transistors")
        return best, costs[best]


def crossover_points(model: PackagingCostModel,
                     budgets: tuple[float, ...],
                     ) -> list[tuple[float, PackagingStrategy, float]]:
    """Sweep system budgets; return (budget, winner, cost) per point.

    The Sec.-VI reading: single chip wins small systems, MCM the middle
    (where single dies would yield terribly but boards pay per-package
    overhead), board the cases where MCM substrates cost too much.
    """
    if not budgets:
        raise ParameterError("budgets must be non-empty")
    out = []
    for budget in budgets:
        winner, cost = model.best_strategy(budget)
        out.append((budget, winner, cost))
    return out
