"""Chiplet-era system cost — eq. (1) extended to multi-die assemblies.

The paper prices a monolithic die; the retrieved related work (Chiplet
Actuary, CATCH — see PAPERS.md) extends the same skeleton to systems
that partition ``N_tr`` across ``k`` smaller chiplets.  Smaller dies
pack better (eq. 4) and yield exponentially better (eq. 7), but the
assembly pays three new taxes:

* **known-good-die test** — every chiplet is wafer-probed at coverage
  ``c`` before bonding (:class:`~repro.manufacturing.test_cost.
  TestCostModel`); only the ``Y^c`` pass fraction is bonded, and by
  Williams–Brown (:func:`~repro.system.kgd.incoming_quality`) a passing
  die is actually good with probability ``q = Y^{1−c}``;
* **packaging** — a substrate/interposer priced per package, per die,
  and per cm² of bonded silicon (:class:`PackagingTech`);
* **bonding yield** — each join succeeds with probability
  ``bond_yield``, so the assembly works with ``(q·bond_yield)^k``
  (the MCM first-pass-yield law of :mod:`repro.system.mcm`).

:class:`ChipletCostModel.system_cost` composes those into a per-
transistor cost whose silicon term is *exactly* the eq.-(1)
association ``C_w / (N_ch · n_k · Y_eff)`` — with full probe coverage,
perfect bonding, and free packaging/test, ``k = 1`` reproduces
:func:`~repro.core.optimization.transistor_cost_full` **bit for bit**
(a golden test in ``tests/system/test_chiplet.py`` holds it there).
:func:`monolithic_crossover` searches for the transistor budget where
the k-chiplet build starts undercutting the monolithic one.

This scalar model is the parity reference for the vectorized
:func:`repro.batch.engine.chiplet_cost_batch` kernel, the
:class:`repro.batch.sweep.ChipletCrossoverSweep` landscape spec, and
the served :class:`repro.serve.ChipletCostQuery` — all of which must
replay this module's operation order exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.optimization import FIG8_FAB, FabCharacterization
from ..core.wafer_cost import WaferCostModel
from ..errors import ParameterError
from ..geometry import Die, Wafer, dies_per_wafer_maly
from ..manufacturing.test_cost import TestCostModel
from ..units import require_fraction, require_nonnegative, require_positive
from ..yieldsim.models import scaled_poisson_yield
from .kgd import incoming_quality

__all__ = [
    "PackagingTech",
    "ChipletCostBreakdown",
    "ChipletCostModel",
    "monolithic_crossover",
    "ORGANIC_SUBSTRATE",
    "SILICON_INTERPOSER",
    "BARE_ASSEMBLY",
    "PACKAGING_TECHS",
    "FREE_TEST",
]

#: Matches the economic-feasibility cutoff of
#: :func:`repro.core.optimization.transistor_cost_full`.
_YIELD_CUTOFF = 1e-250


@dataclass(frozen=True)
class PackagingTech:
    """One packaging/interposer technology for a k-chiplet assembly.

    The package is priced ``base + per_die·k + per_cm2·(k·A_chiplet)``
    and every one of the ``k`` die-attach joins succeeds independently
    with probability ``bond_yield``.
    """

    name: str
    base_cost_dollars: float
    cost_per_die_dollars: float
    cost_per_cm2_dollars: float
    bond_yield: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("packaging tech needs a non-empty name")
        require_nonnegative("base_cost_dollars", self.base_cost_dollars)
        require_nonnegative("cost_per_die_dollars", self.cost_per_die_dollars)
        require_nonnegative("cost_per_cm2_dollars", self.cost_per_cm2_dollars)
        require_fraction("bond_yield", self.bond_yield, inclusive_low=False)

    def package_cost(self, chiplets: int, chiplet_area_cm2: float) -> float:
        """Package cost in dollars for ``chiplets`` dies of the given area."""
        require_positive("chiplet_area_cm2", chiplet_area_cm2)
        _require_chiplet_count(chiplets)
        return self.base_cost_dollars \
            + self.cost_per_die_dollars * chiplets \
            + self.cost_per_cm2_dollars * (chiplets * chiplet_area_cm2)


#: Cheap laminate: low package cost, visibly imperfect bonding.
ORGANIC_SUBSTRATE = PackagingTech(
    name="organic", base_cost_dollars=2.0, cost_per_die_dollars=0.40,
    cost_per_cm2_dollars=1.25, bond_yield=0.98)

#: Silicon interposer: expensive, near-perfect bonding.
SILICON_INTERPOSER = PackagingTech(
    name="interposer", base_cost_dollars=9.0, cost_per_die_dollars=0.80,
    cost_per_cm2_dollars=4.0, bond_yield=0.995)

#: Degenerate tech — free, perfect assembly.  With ``FREE_TEST`` and
#: full probe coverage it makes ``k = 1`` reproduce the monolithic
#: eq.-(1) cost bitwise (the golden degeneration).
BARE_ASSEMBLY = PackagingTech(
    name="bare", base_cost_dollars=0.0, cost_per_die_dollars=0.0,
    cost_per_cm2_dollars=0.0, bond_yield=1.0)

#: Canonical techs by name (the CLI/HTTP lookup table).
PACKAGING_TECHS = {t.name: t for t in (
    ORGANIC_SUBSTRATE, SILICON_INTERPOSER, BARE_ASSEMBLY)}

#: A tester that costs nothing per die — the other half of the
#: degenerate configuration behind the bitwise k=1 golden.
FREE_TEST = TestCostModel(
    tester_rate_dollars_per_hour=300.0,
    probe_base_seconds=0.0, probe_seconds_per_kilotransistor=0.0,
    final_base_seconds=0.0, final_seconds_per_kilotransistor=0.0)


def _require_chiplet_count(chiplets) -> int:
    if isinstance(chiplets, bool) or not isinstance(chiplets, int):
        raise ParameterError(
            f"chiplets must be an int, got {chiplets!r}")
    if chiplets < 1:
        raise ParameterError(f"chiplets must be >= 1, got {chiplets}")
    return chiplets


@dataclass(frozen=True)
class ChipletCostBreakdown:
    """Every intermediate of one :meth:`ChipletCostModel.system_cost`.

    Where the assembly is infeasible (a chiplet does not fit the wafer,
    or the effective yield underflows the economic cutoff) the three
    per-transistor cost fields are ``inf`` while the physical
    intermediates keep their computed values for auditing — the
    :class:`~repro.batch.engine.BatchCostResult` convention.
    """

    n_transistors: float
    feature_size_um: float
    chiplets: int
    transistors_per_chiplet: float
    chiplet_area_cm2: float
    wafer_cost_dollars: float
    dies_per_wafer: int
    die_yield: float
    assembly_yield: float
    effective_yield: float
    packaging_cost_dollars: float
    silicon_cost_per_transistor_dollars: float
    overhead_cost_per_transistor_dollars: float
    cost_per_transistor_dollars: float
    feasible: bool

    @property
    def cost_per_transistor_microdollars(self) -> float:
        """C_tr in the paper's Table-3 unit, $·10⁻⁶ (inf when masked)."""
        return self.cost_per_transistor_dollars * 1.0e6

    @property
    def system_cost_dollars(self) -> float:
        """Total cost of one good system (inf when infeasible)."""
        return self.cost_per_transistor_dollars * self.n_transistors


@dataclass(frozen=True)
class ChipletCostModel:
    """Scalar chiplet system cost — the parity reference.

    ``probe_coverage`` is the KGD wafer-probe fault coverage ``c`` in
    (0, 1]: the pass rate is ``Y^c`` (the classical approximation used
    by :class:`~repro.system.kgd.KgdEconomics`) and the incoming
    quality of a bonded die is ``Y^{1−c}`` (Williams–Brown).
    """

    fab: FabCharacterization = field(default_factory=lambda: FIG8_FAB)
    packaging: PackagingTech = field(
        default_factory=lambda: ORGANIC_SUBSTRATE)
    test: TestCostModel = field(default_factory=TestCostModel)
    probe_coverage: float = 0.95

    def __post_init__(self) -> None:
        if not isinstance(self.fab, FabCharacterization):
            raise ParameterError(
                f"fab must be a FabCharacterization, got {self.fab!r}")
        if not isinstance(self.packaging, PackagingTech):
            raise ParameterError(
                f"packaging must be a PackagingTech, got {self.packaging!r}")
        if not isinstance(self.test, TestCostModel):
            raise ParameterError(
                f"test must be a TestCostModel, got {self.test!r}")
        require_fraction("probe_coverage", self.probe_coverage,
                         inclusive_low=False)

    def system_cost(self, chiplets: int, n_transistors: float,
                    feature_size_um: float) -> ChipletCostBreakdown:
        """Price one ``(k, N_tr, λ)`` system, with every intermediate.

        The operation order here is the contract the batched kernel
        (:func:`repro.batch.engine.chiplet_cost_batch`) and the serve
        executor replay bit for bit — change it only together with
        them.  The silicon term keeps eq. (1)'s exact association
        ``C_w / (N_ch · n_k · Y_eff)`` so the ``k = 1`` degeneration
        stays bitwise.
        """
        k = _require_chiplet_count(chiplets)
        require_positive("n_transistors", n_transistors)
        require_positive("feature_size_um", feature_size_um)
        fab = self.fab
        n_k = n_transistors / k
        wafer = Wafer(radius_cm=fab.wafer_radius_cm)
        wafer_cost = WaferCostModel(
            reference_cost_dollars=fab.reference_cost_dollars,
            cost_growth_rate=fab.cost_growth_rate)
        die = Die.from_transistor_count(n_k, fab.design_density,
                                        feature_size_um)
        n_ch = dies_per_wafer_maly(wafer, die)
        y_die = scaled_poisson_yield(n_k, fab.design_density,
                                     fab.defect_coefficient,
                                     feature_size_um, fab.size_exponent_p)
        c_w = wafer_cost.pure_cost(feature_size_um)
        pass_rate = y_die ** self.probe_coverage
        q = incoming_quality(y_die, self.probe_coverage)
        y_asm = (q * self.packaging.bond_yield) ** k
        y_eff = pass_rate * y_asm
        area = die.area_cm2
        packaging_cost = self.packaging.base_cost_dollars \
            + self.packaging.cost_per_die_dollars * k \
            + self.packaging.cost_per_cm2_dollars * (k * area)
        feasible = n_ch >= 1 and y_eff >= _YIELD_CUTOFF
        if feasible:
            silicon_tr = c_w / (n_ch * n_k * y_eff)
            overhead_total = k * (self.test.probe_cost(n_k) / pass_rate) \
                + packaging_cost + self.test.final_cost(n_transistors)
            overhead_tr = overhead_total / (y_asm * n_transistors)
            cost_tr = silicon_tr + overhead_tr
        else:
            silicon_tr = overhead_tr = cost_tr = math.inf
        return ChipletCostBreakdown(
            n_transistors=n_transistors,
            feature_size_um=feature_size_um,
            chiplets=k,
            transistors_per_chiplet=n_k,
            chiplet_area_cm2=area,
            wafer_cost_dollars=c_w,
            dies_per_wafer=n_ch,
            die_yield=y_die,
            assembly_yield=y_asm,
            effective_yield=y_eff,
            packaging_cost_dollars=packaging_cost,
            silicon_cost_per_transistor_dollars=silicon_tr,
            overhead_cost_per_transistor_dollars=overhead_tr,
            cost_per_transistor_dollars=cost_tr,
            feasible=feasible)

    def cost_per_transistor(self, chiplets: int, n_transistors: float,
                            feature_size_um: float) -> float:
        """C_tr in dollars for one ``(k, N_tr, λ)`` system (inf if
        infeasible) — the scalar-reference entry point of the serving
        parity contract."""
        return self.system_cost(
            chiplets, n_transistors,
            feature_size_um).cost_per_transistor_dollars


def monolithic_crossover(model: ChipletCostModel, feature_size_um: float,
                         chiplets: int = 4, *,
                         n_lo: float = 1e5, n_hi: float = 1e9,
                         scan_points: int = 96,
                         rel_tol: float = 1e-9,
                         max_iters: int = 200) -> float | None:
    """Smallest transistor budget where ``chiplets`` dies beat one.

    Scans a geometric grid of ``scan_points`` budgets over
    ``[n_lo, n_hi]`` at fixed λ for the first one where
    ``cost(k, N) < cost(1, N)`` (a budget where *both* builds are
    infeasible never counts as a win), then refines the bracket by
    geometric bisection to relative tolerance ``rel_tol``.  Returns
    ``n_lo`` if the chiplet build already wins there and ``None`` if
    it never wins on the grid (e.g. packaging overhead dominates for
    every budget in range).  The eq.-(4) floor makes the indicator
    locally noisy; the returned value is the scan's first
    monolithic→chiplet transition, which is what the crossover
    landscape plots.
    """
    k = _require_chiplet_count(chiplets)
    if k < 2:
        raise ParameterError(
            f"crossover needs chiplets >= 2, got {k}")
    require_positive("n_lo", n_lo)
    require_positive("n_hi", n_hi)
    if n_hi <= n_lo:
        raise ParameterError(
            f"need n_hi > n_lo, got [{n_lo}, {n_hi}]")
    if scan_points < 2:
        raise ParameterError(
            f"scan_points must be >= 2, got {scan_points}")

    def chiplet_wins(n: float) -> bool:
        return model.cost_per_transistor(k, n, feature_size_um) \
            < model.cost_per_transistor(1, n, feature_size_um)

    if chiplet_wins(n_lo):
        return n_lo
    ratio = (n_hi / n_lo) ** (1.0 / (scan_points - 1))
    lo, hi = n_lo, None
    probe = n_lo
    for _ in range(scan_points - 1):
        probe = min(probe * ratio, n_hi)
        if chiplet_wins(probe):
            hi = probe
            break
        lo = probe
    if hi is None:
        return None
    for _ in range(max_iters):
        mid = math.sqrt(lo * hi)
        if chiplet_wins(mid):
            hi = mid
        else:
            lo = mid
        if hi - lo <= rel_tol * hi:
            break
    return hi
