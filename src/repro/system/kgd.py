"""Known-good-die economics — the [31] question: "Are there any
alternatives to known good die?"

Bare dies sold for MCM assembly cannot get full packaged final test;
their *incoming quality* (probability a shipped die is good) is set by
wafer probe coverage.  Low incoming quality taxes the module: with N
dies per module, module first-pass yield is q^N, so small per-die
escape rates compound brutally.

:class:`KgdEconomics` prices the trade: paying ``kgd_test_cost`` per
die raises coverage from probe level to (near) full, lifting q; the
alternative is paying for module-level diagnosis and rework.  The
breakeven module size — above which KGD testing always pays — is the
quantity MCM designers of the era argued about, reproduced by the
``mcm_tradeoff`` example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive
from .mcm import McmCostModel, McmSubstrate


def incoming_quality(die_yield: float, fault_coverage: float) -> float:
    """Probability a test-passing die is actually good.

    Williams–Brown: defect level DL = 1 − Y^(1−c); quality = 1 − DL =
    Y^(1−c).  Full coverage gives quality 1 regardless of yield; zero
    coverage gives quality = yield (every die ships).
    """
    require_fraction("die_yield", die_yield, inclusive_low=False)
    require_fraction("fault_coverage", fault_coverage)
    return die_yield ** (1.0 - fault_coverage)


@dataclass(frozen=True)
class KgdEconomics:
    """The per-die KGD decision for a module of ``n_dies``.

    Parameters
    ----------
    die_yield:
        True die yield Y at wafer level.
    probe_coverage:
        Fault coverage of standard wafer probe (typical 0.80–0.95).
    kgd_coverage:
        Coverage after the extra KGD test flow (burn-in, at-speed;
        typical 0.99+).
    kgd_test_cost_dollars:
        Extra cost per die of the KGD flow.
    die_cost_dollars:
        Base cost of a probed bare die.
    n_dies:
        Dies per module.
    substrate:
        Substrate used for the module-level comparison.
    assembly_cost_dollars:
        Module assembly cost.
    """

    die_yield: float
    probe_coverage: float
    kgd_coverage: float
    kgd_test_cost_dollars: float
    die_cost_dollars: float
    n_dies: int
    substrate: McmSubstrate
    assembly_cost_dollars: float = 20.0

    def __post_init__(self) -> None:
        require_fraction("die_yield", self.die_yield, inclusive_low=False)
        require_fraction("probe_coverage", self.probe_coverage)
        require_fraction("kgd_coverage", self.kgd_coverage)
        if self.kgd_coverage < self.probe_coverage:
            raise ParameterError(
                "kgd_coverage must be at least probe_coverage "
                f"({self.kgd_coverage} < {self.probe_coverage})")
        require_nonnegative("kgd_test_cost_dollars", self.kgd_test_cost_dollars)
        require_positive("die_cost_dollars", self.die_cost_dollars)
        if self.n_dies < 1:
            raise ParameterError(f"n_dies must be >= 1, got {self.n_dies}")

    def _module(self, quality: float, die_cost: float) -> McmCostModel:
        return McmCostModel(
            substrate=self.substrate, n_dies=self.n_dies,
            die_cost_dollars=die_cost, incoming_quality=quality,
            assembly_cost_dollars=self.assembly_cost_dollars)

    def cost_without_kgd(self) -> float:
        """Cost per good module using probe-only dies."""
        q = incoming_quality(self.die_yield, self.probe_coverage)
        # Probe-only dies: the buyer pays only for dies that passed probe,
        # so the effective die cost is the yielded cost of a passing die.
        pass_rate = self.die_yield ** self.probe_coverage
        effective_die_cost = self.die_cost_dollars / pass_rate
        return self._module(q, effective_die_cost).cost_per_good_module()

    def cost_with_kgd(self) -> float:
        """Cost per good module using KGD-tested dies."""
        q = incoming_quality(self.die_yield, self.kgd_coverage)
        pass_rate = self.die_yield ** self.kgd_coverage
        effective_die_cost = (self.die_cost_dollars / pass_rate) \
            + self.kgd_test_cost_dollars
        return self._module(q, effective_die_cost).cost_per_good_module()

    def kgd_premium_worth_paying(self) -> float:
        """Dollars saved per good module by buying KGD dies (may be < 0)."""
        return self.cost_without_kgd() - self.cost_with_kgd()

    def breakeven_module_size(self, *, max_dies: int = 64) -> int | None:
        """Smallest module size at which KGD pays, or None if it never does.

        Sweeps ``n_dies`` with everything else fixed.  Compounding makes
        this threshold sharp: below it probe-only is fine, above it
        escapes dominate module cost.
        """
        for n in range(1, max_dies + 1):
            trial = KgdEconomics(
                die_yield=self.die_yield, probe_coverage=self.probe_coverage,
                kgd_coverage=self.kgd_coverage,
                kgd_test_cost_dollars=self.kgd_test_cost_dollars,
                die_cost_dollars=self.die_cost_dollars, n_dies=n,
                substrate=self.substrate,
                assembly_cost_dollars=self.assembly_cost_dollars)
            if trial.kgd_premium_worth_paying() > 0.0:
                return n
        return None
