"""Integrated system cost optimization — the Fig.-10 agenda.

Sec. VI: "the system level cost minimization is possible if, and only
if, cost modeling strategy, integrating in a single model such
quantities as: yield of the system's components, expressed in terms of
all strategic design variables (λ, N_tr etc.), cost of testing as a
function of the probability of fault escapes, and many others, is
available."

:class:`SystemCostModel` is that single model, assembled from this
repository's substrates: for a partitioned system it composes

* silicon cost per partition — eq. (1) via the Fig.-8 fab machinery,
* test cost and escapes per partition — the Williams–Brown economics,
* assembly and module yield — the MCM model,

into one objective ``cost_per_good_system``, and
:func:`optimize_system` searches the paper's strategic variables —
feature size per partition and test coverage per partition — jointly.
The result demonstrates the paper's thesis: the jointly optimal design
differs from what silicon-only or test-only optimization picks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..core.optimization import (
    FIG8_FAB,
    FabCharacterization,
    transistor_cost_full,
)
from ..errors import ParameterError
from ..manufacturing.test_cost import TestCostModel
from ..system.kgd import incoming_quality
from ..system.mcm import McmCostModel, McmSubstrate
from ..units import require_fraction, require_positive
from .partitioning import Partition


@dataclass(frozen=True)
class PartitionDesign:
    """One partition's chosen strategic variables."""

    partition: Partition
    feature_size_um: float
    test_coverage: float

    def __post_init__(self) -> None:
        require_positive("feature_size_um", self.feature_size_um)
        require_fraction("test_coverage", self.test_coverage)


@dataclass(frozen=True)
class SystemCostReport:
    """Itemized outcome of one system design point."""

    designs: tuple[PartitionDesign, ...]
    silicon_dollars: float
    test_dollars: float
    module_cost_per_good: float
    module_yield: float

    @property
    def cost_per_good_system(self) -> float:
        """The single objective Fig. 10 asks for."""
        return self.module_cost_per_good


@dataclass(frozen=True)
class SystemCostModel:
    """Joint silicon + test + assembly cost of a partitioned system.

    Parameters
    ----------
    partitions:
        The system's partitions (each becomes one die on the module).
    substrate:
        MCM substrate assembling the dies.
    fab:
        Fab characterization (Fig.-8 constants by default); each
        partition's d_d overrides the fab's.
    test_model:
        Per-die test time/cost model.
    assembly_cost_dollars:
        Module assembly cost.
    """

    partitions: tuple[Partition, ...]
    substrate: McmSubstrate
    fab: FabCharacterization = FIG8_FAB
    test_model: TestCostModel = field(default_factory=TestCostModel)
    assembly_cost_dollars: float = 20.0

    def __post_init__(self) -> None:
        if not self.partitions:
            raise ParameterError("partitions must be non-empty")

    def _partition_fab(self, partition: Partition) -> FabCharacterization:
        return FabCharacterization(
            cost_growth_rate=self.fab.cost_growth_rate,
            reference_cost_dollars=self.fab.reference_cost_dollars,
            wafer_radius_cm=self.fab.wafer_radius_cm,
            design_density=partition.design_density,
            defect_coefficient=self.fab.defect_coefficient,
            size_exponent_p=self.fab.size_exponent_p)

    def _die_yield(self, partition: Partition, lam: float) -> float:
        from ..yieldsim.models import scaled_poisson_yield
        return scaled_poisson_yield(
            partition.n_transistors, partition.design_density,
            self.fab.defect_coefficient, lam, self.fab.size_exponent_p)

    def evaluate(self, designs: Sequence[PartitionDesign]) -> SystemCostReport:
        """Cost per good system for one choice of variables.

        Each die's delivered cost = silicon (yielded) + test (per tested
        die, spread over passing dies); its incoming quality follows
        Williams–Brown from its yield and coverage.  The module is
        priced by the MCM model with the *mean* die cost and the
        *compound* quality (q_total^(1/N) as the per-die equivalent),
        which keeps the MCM recursion exact for the all-good case.
        """
        if len(designs) != len(self.partitions):
            raise ParameterError(
                f"need {len(self.partitions)} designs, got {len(designs)}")
        silicon_total = 0.0
        test_total = 0.0
        quality_product = 1.0
        die_costs = []
        for design in designs:
            part = design.partition
            lam = design.feature_size_um
            ctr = transistor_cost_full(part.n_transistors, lam,
                                       self._partition_fab(part))
            if math.isinf(ctr):
                raise ParameterError(
                    f"partition {part.name!r} infeasible at {lam} um")
            die_silicon = ctr * part.n_transistors  # cost per GOOD die
            y = self._die_yield(part, lam)
            probe = self.test_model.probe_cost(part.n_transistors)
            # Probe every die; passing fraction Y^c carries the cost.
            pass_rate = y ** design.test_coverage
            test_per_shipped = probe / pass_rate
            q = incoming_quality(y, design.test_coverage)
            quality_product *= q
            die_cost = die_silicon + test_per_shipped
            die_costs.append(die_cost)
            silicon_total += die_silicon
            test_total += test_per_shipped
        n = len(designs)
        mean_die_cost = sum(die_costs) / n
        per_die_quality = quality_product ** (1.0 / n)
        module = McmCostModel(
            substrate=self.substrate, n_dies=n,
            die_cost_dollars=mean_die_cost,
            incoming_quality=per_die_quality,
            assembly_cost_dollars=self.assembly_cost_dollars)
        cost_per_good = module.cost_per_good_module()
        _, final_yield = module.expected_cost_and_yield()
        return SystemCostReport(
            designs=tuple(designs),
            silicon_dollars=silicon_total,
            test_dollars=test_total,
            module_cost_per_good=cost_per_good,
            module_yield=final_yield)


def optimize_system(model: SystemCostModel, *,
                    lambda_grid: tuple[float, ...] = (0.5, 0.65, 0.8, 1.0, 1.2),
                    coverage_grid: tuple[float, ...] = (0.85, 0.95, 0.99),
                    ) -> SystemCostReport:
    """Joint grid search over (λ, coverage) per partition.

    Coordinate descent: optimize each partition's pair holding the
    others fixed, sweep until no improvement.  With the per-partition
    structure of the objective (module terms couple only through the
    mean cost and compound quality) this converges in a few sweeps on
    realistic inputs; a full product grid would be exponential.
    """
    if not lambda_grid or not coverage_grid:
        raise ParameterError("grids must be non-empty")
    designs = [PartitionDesign(partition=p,
                               feature_size_um=lambda_grid[len(lambda_grid) // 2],
                               test_coverage=coverage_grid[-1])
               for p in model.partitions]

    def safe_eval(ds) -> float:
        try:
            return model.evaluate(ds).cost_per_good_system
        except ParameterError:
            return math.inf

    best_cost = safe_eval(designs)
    for _sweep in range(6):
        improved = False
        for i, design in enumerate(designs):
            for lam in lambda_grid:
                for cov in coverage_grid:
                    trial = list(designs)
                    trial[i] = PartitionDesign(
                        partition=design.partition,
                        feature_size_um=lam, test_coverage=cov)
                    cost = safe_eval(trial)
                    if cost < best_cost - 1e-12:
                        designs = trial
                        best_cost = cost
                        improved = True
        if not improved:
            break
    if math.isinf(best_cost):
        raise ParameterError("no feasible design point on the given grids")
    return model.evaluate(designs)


def silicon_only_baseline(model: SystemCostModel, *,
                          lambda_grid: tuple[float, ...] = (0.5, 0.65, 0.8,
                                                            1.0, 1.2),
                          fixed_coverage: float = 0.95) -> SystemCostReport:
    """The disconnected-flows baseline the paper criticizes: pick each
    λ to minimize *silicon* cost alone, test coverage fixed by habit."""
    designs = []
    for part in model.partitions:
        best_lam, best_ctr = None, math.inf
        for lam in lambda_grid:
            ctr = transistor_cost_full(part.n_transistors, lam,
                                       model._partition_fab(part))
            if ctr < best_ctr:
                best_lam, best_ctr = lam, ctr
        if best_lam is None or math.isinf(best_ctr):
            raise ParameterError(f"partition {part.name!r} infeasible")
        designs.append(PartitionDesign(partition=part,
                                       feature_size_um=best_lam,
                                       test_coverage=fixed_coverage))
    return model.evaluate(designs)
