"""Named shared-memory float64 matrices for cross-process work.

Two subsystems move bulk float64 payloads between a parent and pool
workers through a single :class:`multiprocessing.shared_memory.
SharedMemory` segment viewed as a ``(rows, cols)`` matrix:

* the serve process backend (:mod:`repro.serve.backend`) packs one
  coalesced flush group per block — the parent writes the input rows
  (``N_tr``, λ), workers map the *same* segment by name and write
  their result rows in place;
* the tiled sweep engine (:mod:`repro.batch.sweep`) packs a whole
  (rows-axis, cols-axis, result-grid) landscape into one block and
  lets workers write their tile slabs in place.

Either way, zero per-point data is pickled in either direction.

Everything in the matrix is float64 on purpose: the eq.-(4) die counts
are integers far below 2⁵³ (a wafer physically bounds them), so the
int64→float64→int64 round trip is exact, and feasibility masks
round-trip as 0.0/1.0.  That keeps the segment a single homogeneous
block with trivial slicing arithmetic.

Lifecycle contract (enforced by ``tests/test_shm.py``,
``tests/serve/test_shm.py`` and the leak tests in
``tests/serve/test_backend.py``):

* the **parent** :meth:`ShmBlock.create`\\ s a block and must
  :meth:`unlink` it when the work completes, fails, or the owner
  closes — creation registers the segment with the resource tracker,
  so even a crashed parent is eventually cleaned up;
* **workers** :meth:`ShmBlock.attach` by name and only ever
  :meth:`close` their mapping (``track=False`` where the runtime
  supports it; older runtimes auto-register on attach, so the attach
  helper unregisters again — a worker-side tracker must never
  "clean up" a segment the parent still owns);
* :meth:`close` tolerates live NumPy views (a view pins the mapping
  until garbage collection — the *name* is still removed by
  ``unlink``, which is what "no leak" means here);
* :meth:`unlink` is idempotent, and a name that vanished out from
  under the owner (an external sweep, a racing second release) is
  swallowed **and** unregistered from the resource tracker exactly
  once — otherwise the tracker would try to clean the stale name at
  interpreter shutdown and warn about "leaked" segments.
"""

from __future__ import annotations

import threading
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .errors import ParameterError

__all__ = ["ShmBlock"]

_ITEMSIZE = 8  # float64

_attach_lock = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    # Python 3.13+ lets an attaching process opt out of resource
    # tracking.  Older runtimes always register on attach — and since
    # every process funnels into one tracker whose per-type store is a
    # *set*, a worker's register is a no-op (the owner already added
    # the name) but its balancing unregister would strip the *owner's*
    # registration, leaving the tracker to KeyError when the owner
    # unlinks.  So on those runtimes the register call is suppressed
    # outright instead of undone: the attaching side never owns the
    # name; tracking (and unlinking) is the creator's job.
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - depends on runtime version
        with _attach_lock:
            original = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                return shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original


class ShmBlock:
    """One named shared float64 matrix: parent creates, workers attach."""

    __slots__ = ("shm", "shape", "_owner", "_unlinked")

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, int], owner: bool) -> None:
        self.shm = shm
        self.shape = shape
        self._owner = owner
        self._unlinked = False

    @classmethod
    def create(cls, rows: int, cols: int) -> "ShmBlock":
        """Allocate a fresh named segment sized for ``rows × cols``."""
        if rows < 1 or cols < 1:
            raise ParameterError(
                f"shared block must be at least 1x1, got {rows}x{cols}")
        shm = shared_memory.SharedMemory(
            create=True, size=_ITEMSIZE * rows * cols)
        return cls(shm, (rows, cols), owner=True)

    @classmethod
    def attach(cls, name: str, rows: int, cols: int) -> "ShmBlock":
        """Map an existing segment by name (worker side, never unlinks)."""
        return cls(_attach_untracked(name), (rows, cols), owner=False)

    @property
    def name(self) -> str:
        """The segment's system-wide name (ship this to workers)."""
        return self.shm.name

    @property
    def array(self) -> np.ndarray:
        """A fresh ``(rows, cols)`` float64 view of the whole segment.

        Views alias the shared buffer directly — writes are visible to
        every process mapping the block.  Drop all views before
        :meth:`close` where possible; a surviving view merely delays
        the unmap until garbage collection (see :meth:`close`).
        """
        return np.ndarray(self.shape, dtype=np.float64, buffer=self.shm.buf)

    def close(self) -> None:
        """Unmap this process's view of the segment.

        A NumPy view still referencing the buffer raises
        ``BufferError`` inside ``mmap.close``; that is tolerated here —
        the mapping is then released when the view is collected, and
        the segment *name* is governed by :meth:`unlink` regardless.
        """
        try:
            self.shm.close()
        except BufferError:
            pass

    def unlink(self) -> None:
        """Remove the segment name system-wide (owner only, idempotent).

        After unlink, :meth:`attach` with this name raises
        ``FileNotFoundError`` — the assertion the leak tests use.

        If the name already vanished (removed externally, or by a
        racing second release), ``SharedMemory.unlink`` raises
        *before* it can unregister the segment from the resource
        tracker; that registration is dropped here instead, so the
        tracker does not warn about (and try to re-remove) the stale
        name at interpreter shutdown.  The ``_unlinked`` latch makes
        any further unlink a pure no-op — each block swallows the
        missing-name case exactly once.
        """
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self.shm.unlink()
        except FileNotFoundError:
            try:
                resource_tracker.unregister(self.shm._name, "shared_memory")
            except Exception:
                pass

    def release(self) -> None:
        """Owner teardown: :meth:`close` then :meth:`unlink`."""
        self.close()
        self.unlink()
