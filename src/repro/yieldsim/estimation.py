"""Estimating yield-model parameters from wafer maps.

The fitted constants the paper uses (D = 1.72, p = 4.07 "extracted from
a real manufacturing operation" [26]) come from exactly this kind of
analysis: take binned defect counts per die (wafer maps), and estimate
the defect density and the clustering behind them.  This module
implements the standard estimators and closes the loop with our own
:class:`~repro.yieldsim.monte_carlo.SpotDefectSimulator` — simulate maps
with known parameters, re-estimate them, and require agreement (see
``tests/yieldsim/test_estimation.py``).

Estimators:

* :func:`estimate_density_poisson` — MLE of D under Poisson defects
  (mean count per area); exact and unbiased.
* :func:`estimate_density_from_yield` — the fab-floor shortcut: invert
  ``Y = exp(−A·D)`` from the good/bad ratio alone (no counts needed —
  this is all a pass/fail probe gives you).
* :func:`estimate_clustering_alpha` — method-of-moments estimate of the
  negative-binomial clustering parameter from the count variance
  (``var = m + m²/α``).
* :func:`window_method` — Stapper's window method: re-bin the map at
  growing window sizes; the yield-vs-area curve's departure from
  exponential reveals clustering without per-die counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ParameterError
from ..units import require_positive
from .monte_carlo import WaferMap


def _pooled_counts(maps: Sequence[WaferMap]) -> np.ndarray:
    if not maps:
        raise ParameterError("need at least one wafer map")
    return np.concatenate([m.defect_counts for m in maps])


def estimate_density_poisson(maps: Sequence[WaferMap],
                             die_area_cm2: float) -> float:
    """MLE of defect density under the Poisson model: mean count / area."""
    require_positive("die_area_cm2", die_area_cm2)
    counts = _pooled_counts(maps)
    return float(counts.mean()) / die_area_cm2


def estimate_density_from_yield(maps: Sequence[WaferMap],
                                die_area_cm2: float) -> float:
    """Invert eq. (6) from the pass/fail ratio: D = −ln(Y)/A.

    Raises when the pooled yield is 0 (all dies dead — density
    unidentifiable from pass/fail data alone) or 1 (no defects seen).
    """
    require_positive("die_area_cm2", die_area_cm2)
    counts = _pooled_counts(maps)
    good = float(np.count_nonzero(counts == 0))
    total = float(counts.size)
    if good == 0.0:
        raise ParameterError("pooled yield is 0; density unidentifiable")
    if good == total:
        return 0.0
    return -math.log(good / total) / die_area_cm2


def estimate_clustering_alpha(maps: Sequence[WaferMap],
                              *, min_overdispersion: float = 1e-6) -> float:
    """Method-of-moments α from count mean/variance: var = m + m²/α.

    Returns ``math.inf`` when the counts show no overdispersion beyond
    Poisson (variance ≤ mean): that is the α → ∞ Poisson limit, not an
    error.
    """
    counts = _pooled_counts(maps).astype(float)
    m = counts.mean()
    v = counts.var(ddof=1) if counts.size > 1 else 0.0
    if m <= 0.0:
        raise ParameterError("no defects observed; alpha unidentifiable")
    excess = v - m
    if excess <= min_overdispersion * m:
        return math.inf
    return float(m * m / excess)


@dataclass(frozen=True)
class WindowPoint:
    """One point of the window method: window size k, observed yield."""

    window_dies: int
    observed_yield: float
    poisson_prediction: float

    @property
    def clustering_signal(self) -> float:
        """Observed minus Poisson-predicted log-yield (≥ 0 for clustering)."""
        if self.observed_yield <= 0.0 or self.poisson_prediction <= 0.0:
            return 0.0
        return math.log(self.observed_yield) \
            - math.log(self.poisson_prediction)


def window_method(wafer_map: WaferMap, *,
                  window_sizes: tuple[int, ...] = (1, 2, 4)) -> list[WindowPoint]:
    """Stapper's window method on one wafer map.

    Dies are grouped into windows of k adjacent dies (by sorted
    position); a window "yields" if all k dies are defect-free.  Under
    pure Poisson, window yield is Y₁^k; clustering concentrates defects,
    so observed window yields exceed the Poisson prediction — the gap
    grows with k and identifies clustering from pass/fail data only.
    """
    if not window_sizes:
        raise ParameterError("window_sizes must be non-empty")
    counts = wafer_map.defect_counts
    if counts.size == 0:
        raise ParameterError("wafer map has no dies")
    # Order dies by (y, x) so windows are spatially coherent.
    order = np.lexsort((wafer_map.die_centers_cm[:, 0],
                        wafer_map.die_centers_cm[:, 1]))
    ordered = counts[order]
    y1 = float(np.count_nonzero(ordered == 0)) / ordered.size
    points = []
    for k in window_sizes:
        if k < 1:
            raise ParameterError(f"window size must be >= 1, got {k}")
        n_windows = ordered.size // k
        if n_windows == 0:
            continue
        trimmed = ordered[:n_windows * k].reshape(n_windows, k)
        window_good = np.all(trimmed == 0, axis=1)
        observed = float(window_good.mean())
        points.append(WindowPoint(window_dies=k, observed_yield=observed,
                                  poisson_prediction=y1 ** k))
    return points


def pooled_window_method(maps: Sequence[WaferMap], *,
                         window_sizes: tuple[int, ...] = (1, 2, 4, 8),
                         ) -> list[WindowPoint]:
    """Window method pooled over a lot.

    Window-good counts are aggregated across wafers before the yield is
    formed, and compared against ``(pooled Y₁)^k``.  Pooling is what
    exposes *wafer-to-wafer* density variation (the gamma mixing behind
    the negative-binomial model): good wafers contribute
    disproportionately many good windows at large k, lifting the pooled
    curve above the Poisson prediction even when each single wafer is
    internally Poisson.
    """
    if not maps:
        raise ParameterError("need at least one wafer map")
    if not window_sizes:
        raise ParameterError("window_sizes must be non-empty")
    pooled_good = {k: 0 for k in window_sizes}
    pooled_total = {k: 0 for k in window_sizes}
    good_dies = 0
    total_dies = 0
    for wafer_map in maps:
        counts = wafer_map.defect_counts
        if counts.size == 0:
            continue
        order = np.lexsort((wafer_map.die_centers_cm[:, 0],
                            wafer_map.die_centers_cm[:, 1]))
        ordered = counts[order]
        good_dies += int(np.count_nonzero(ordered == 0))
        total_dies += int(ordered.size)
        for k in window_sizes:
            if k < 1:
                raise ParameterError(f"window size must be >= 1, got {k}")
            n_windows = ordered.size // k
            if n_windows == 0:
                continue
            trimmed = ordered[:n_windows * k].reshape(n_windows, k)
            pooled_good[k] += int(np.all(trimmed == 0, axis=1).sum())
            pooled_total[k] += n_windows
    if total_dies == 0:
        raise ParameterError("no dies in any map")
    y1 = good_dies / total_dies
    points = []
    for k in window_sizes:
        if pooled_total[k] == 0:
            continue
        observed = pooled_good[k] / pooled_total[k]
        points.append(WindowPoint(window_dies=k, observed_yield=observed,
                                  poisson_prediction=y1 ** k))
    return points


def clustering_detected(maps: Sequence[WaferMap], *,
                        window_sizes: tuple[int, ...] = (1, 2, 4, 8),
                        threshold: float = 0.05) -> bool:
    """Pooled window-method verdict: is there clustering beyond Poisson?

    Compares the pooled clustering signal at the largest usable window
    size against ``threshold`` (log-yield units).
    """
    require_positive("threshold", threshold)
    points = pooled_window_method(maps, window_sizes=window_sizes)
    if not points:
        raise ParameterError("no usable windows in any map")
    return points[-1].clustering_signal > threshold


@dataclass(frozen=True)
class FitReport:
    """Bundle of estimates from one lot of wafer maps."""

    density_mle_per_cm2: float
    density_from_yield_per_cm2: float
    clustering_alpha: float
    n_dies: int
    n_wafers: int

    @property
    def is_clustered(self) -> bool:
        """Finite fitted α means overdispersion beyond Poisson."""
        return math.isfinite(self.clustering_alpha)


def fit_lot(maps: Sequence[WaferMap], die_area_cm2: float) -> FitReport:
    """All estimators on one lot, bundled."""
    counts = _pooled_counts(maps)
    try:
        from_yield = estimate_density_from_yield(maps, die_area_cm2)
    except ParameterError:
        from_yield = float("nan")
    return FitReport(
        density_mle_per_cm2=estimate_density_poisson(maps, die_area_cm2),
        density_from_yield_per_cm2=from_yield,
        clustering_alpha=estimate_clustering_alpha(maps),
        n_dies=int(counts.size),
        n_wafers=len(maps))
