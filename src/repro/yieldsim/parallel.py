"""Process-sharded Monte Carlo lots with spawned seed streams.

``SpotDefectSimulator.simulate_lot`` grades a whole lot in one
vectorized pass, but on a single generator stream — lot sizes large
enough for tight statistical bounds are wall-clock bound on one core.
This module shards a lot across processes while keeping the results
**bitwise independent of worker count and scheduling**:

* every wafer gets its own child stream derived with
  ``np.random.SeedSequence.spawn`` (wafer *i* always consumes child
  *i*, no matter which worker simulates it),
* shards are contiguous wafer-index blocks, so merging preserves wafer
  order by construction,
* the per-wafer draw order inside a shard is exactly the draw order of
  ``simulate_wafer`` on that wafer's child stream, so the sharded lot
  is bitwise identical to a sequential per-wafer reference loop.

Execution degrades gracefully: ``workers=1`` (or ``None``) runs the
same spawned-stream schedule in-process, and a
:class:`~concurrent.futures.ProcessPoolExecutor` that cannot start or
run (sandboxed/fork-restricted hosts, unpicklable platforms) falls
back to the sequential schedule with a single
:class:`ParallelExecutionWarning` — results are identical either way.

The contract is pinned down by ``tests/yieldsim/test_parallel.py``
(golden determinism + convergence at large lot sizes) and
``tests/property_based/test_parallel_parity.py`` (hypothesis sweeps
over geometry, density, clustering, lot size and worker count), and
timed by ``benchmarks/bench_mc_shard.py``.
"""

from __future__ import annotations

import pickle
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Union, overload

import numpy as np

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.capture import absorb, begin_capture, capture_flags, end_capture
from .monte_carlo import WaferMap

if TYPE_CHECKING:  # pragma: no cover - import cycle with monte_carlo
    from .monte_carlo import SpotDefectSimulator

#: Seeds accepted wherever a lot-level seed is expected.
SeedLike = Union[int, np.random.SeedSequence]


class ParallelExecutionWarning(RuntimeWarning):
    """Process-pool execution failed; the lot ran sequentially instead.

    Emitted at most once per :func:`simulate_lot_sharded` call.  The
    results are unaffected — the sequential fallback replays exactly
    the same per-wafer seed schedule.
    """


@dataclass(frozen=True, eq=False)
class LotResult(Sequence):
    """An ordered lot of :class:`WaferMap` plus lot-level aggregates.

    Behaves as an immutable sequence of wafer maps (``len``, indexing,
    slicing, iteration), so existing consumers written against
    ``list[WaferMap]`` keep working, while lot-level statistics live
    in one place.  All wafers in a lot share the same die grid.
    """

    wafer_maps: tuple[WaferMap, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "wafer_maps", tuple(self.wafer_maps))

    def __len__(self) -> int:
        """Number of wafers in the lot."""
        return len(self.wafer_maps)

    @overload
    def __getitem__(self, index: int) -> WaferMap: ...

    @overload
    def __getitem__(self, index: slice) -> "LotResult": ...

    def __getitem__(self, index):
        """Wafer map at ``index``; a slice returns a sub-``LotResult``."""
        if isinstance(index, slice):
            return LotResult(self.wafer_maps[index])
        return self.wafer_maps[index]

    def __iter__(self) -> Iterator[WaferMap]:
        """Iterate wafer maps in wafer order."""
        return iter(self.wafer_maps)

    @property
    def n_wafers(self) -> int:
        """Number of wafers in the lot."""
        return len(self.wafer_maps)

    @property
    def n_dies_total(self) -> int:
        """Total complete dies across the lot."""
        return sum(m.n_dies for m in self.wafer_maps)

    @property
    def n_good_total(self) -> int:
        """Total dies with zero killer defects across the lot."""
        return sum(m.n_good for m in self.wafer_maps)

    @property
    def n_defects_total(self) -> int:
        """Total physical defects thrown across the lot (killer or not)."""
        return sum(m.n_defects_total for m in self.wafer_maps)

    @property
    def yield_fraction(self) -> float:
        """Pooled lot yield: total good dies over total dies.

        Because every wafer in a lot shares one die grid, this equals
        the mean of :attr:`per_wafer_yields` (up to float rounding).
        """
        total = self.n_dies_total
        return self.n_good_total / total if total else 0.0

    @property
    def per_wafer_yields(self) -> np.ndarray:
        """Array of each wafer's ``yield_fraction``, in wafer order."""
        return np.array([m.yield_fraction for m in self.wafer_maps],
                        dtype=float)

    @property
    def defect_counts(self) -> np.ndarray:
        """Killer-defect counts stacked as a (n_wafers, n_dies) array."""
        if not self.wafer_maps:
            return np.zeros((0, 0), dtype=int)
        return np.stack([m.defect_counts for m in self.wafer_maps])


def spawn_wafer_seeds(seed: SeedLike,
                      n_wafers: int) -> list[np.random.SeedSequence]:
    """One independent child :class:`~numpy.random.SeedSequence` per wafer.

    Wafer ``i`` always receives child ``i`` of the root sequence, so
    the per-wafer streams — and therefore the simulated lot — do not
    depend on how wafers are later packed into worker shards.  An
    ``int`` seed builds a fresh root; passing a ``SeedSequence``
    spawns from it in place (advancing its spawn counter).
    """
    if n_wafers < 0:
        raise ParameterError(f"n_wafers must be >= 0, got {n_wafers}")
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(n_wafers) if n_wafers else []


def _simulate_shard(sim: "SpotDefectSimulator",
                    seeds: list[np.random.SeedSequence],
                    n_dies: int, first_wafer: int = 0,
                    obs_capture: tuple[bool, bool] | None = None,
                    density_scale: float = 1.0
                    ) -> tuple[list[int], np.ndarray, dict | None]:
    # One worker's unit: draw each wafer from its own child stream (in
    # exactly simulate_wafer's draw order), then grade the whole shard
    # in one batched defect-vs-die pass.  Returns (defects thrown per
    # wafer, counts array of shape (len(seeds), n_dies), observability
    # payload or None) — centers are NOT shipped back; the parent
    # re-attaches its own copy.  ``obs_capture`` carries the parent's
    # obs flags (None when off); spans/metrics recorded under it are
    # returned in the payload for the parent to absorb, which works
    # identically in-process and across a spawn/fork pool boundary.
    # ``density_scale`` is the lot-level hierarchy factor — one scalar
    # drawn by the parent and shipped to every shard, so it cannot
    # depend on how the lot was split.
    frame = begin_capture(obs_capture) if obs_capture else None
    try:
        t0 = time.perf_counter() if obs_capture else 0.0
        with _span("mc.shard", first_wafer=first_wafer,
                   n_wafers=len(seeds)):
            n_thrown: list[int] = []
            killer_pos: list[np.ndarray] = []
            for i, ss in enumerate(seeds):
                with _span("mc.wafer", wafer=first_wafer + i):
                    rng = np.random.default_rng(ss)
                    thrown, pos = sim._throw_wafer_defects(
                        rng, n_dies, density_scale)
                n_thrown.append(thrown)
                killer_pos.append(pos)
                _metrics.inc("mc.wafers_simulated")
                _metrics.inc("mc.defects_thrown", thrown)
            counts = sim._grade_lot(killer_pos, sim._die_centers())
        if obs_capture:
            _metrics.observe("mc.worker.wall_seconds",
                             time.perf_counter() - t0)
    finally:
        payload = end_capture(frame) if frame else None
    return n_thrown, counts, payload


def _shard_slices(n_wafers: int, workers: int) -> list[slice]:
    # Contiguous, order-preserving blocks, sized as evenly as possible.
    bounds = np.linspace(0, n_wafers, workers + 1).astype(int)
    return [slice(int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def simulate_lot_sharded(sim: "SpotDefectSimulator", n_wafers: int,
                         seed: SeedLike,
                         workers: int | None = None) -> LotResult:
    """Simulate a lot on per-wafer spawned streams, optionally sharded.

    Parameters
    ----------
    sim:
        The configured :class:`SpotDefectSimulator`.
    n_wafers:
        Lot size (>= 0).
    seed:
        Root entropy; expanded into one child stream per wafer via
        :func:`spawn_wafer_seeds`.
    workers:
        ``None`` or ``1`` runs the spawned-stream schedule in-process;
        ``k > 1`` splits the lot into ``k`` contiguous shards on a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  Results are
        bitwise identical for every value (worker-count invariance).

    A pool that cannot start or execute falls back to the in-process
    schedule with one :class:`ParallelExecutionWarning`; genuine
    simulation errors (bad parameters) are never swallowed.
    """
    if n_wafers < 0:
        raise ParameterError(f"n_wafers must be >= 0, got {n_wafers}")
    if workers is not None and workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    centers = sim._die_centers()
    n_dies = int(centers.shape[0])
    root = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    seeds = spawn_wafer_seeds(root, n_wafers)
    # The lot-level density factor gets its own child stream, spawned
    # *after* the wafer children (child n_wafers) and only when the
    # hierarchy is enabled — non-hierarchical lots keep their exact
    # pre-existing seed schedule.  The parent draws the one scalar and
    # ships it to every shard, so the factor — like the wafer streams —
    # is independent of worker count.
    density_scale = 1.0
    if sim.lot_alpha is not None and sim.defect_density_per_cm2 > 0:
        density_scale = sim._lot_density_scale(
            np.random.default_rng(root.spawn(1)[0]))

    n_workers = 1 if workers is None else min(workers, max(n_wafers, 1))
    flags = capture_flags()
    with _span("mc.simulate_lot", n_wafers=n_wafers, workers=n_workers):
        if n_workers <= 1:
            parts = [_simulate_shard(sim, seeds, n_dies, 0, flags,
                                     density_scale)]
        else:
            slices = _shard_slices(n_wafers, n_workers)
            parts = _run_pool(
                _simulate_shard,
                [(sim, seeds[s], n_dies, s.start, flags, density_scale)
                 for s in slices])
        for part in parts:
            absorb(part[2])
    _metrics.inc("mc.lots_simulated")

    n_thrown = [t for part in parts for t in part[0]]
    counts = np.concatenate([part[1] for part in parts], axis=0) \
        if parts else np.zeros((0, n_dies), dtype=int)
    return LotResult(tuple(
        WaferMap(die_centers_cm=centers, defect_counts=counts[i],
                 n_defects_total=n_thrown[i])
        for i in range(n_wafers)))


def _run_pool(fn: Callable, argsets: list[tuple],
              pool: ProcessPoolExecutor | None = None) -> list:
    # Submit fn(*args) per argset on a process pool, one worker each.
    # Infrastructure failures (pool cannot fork/spawn, payload cannot
    # pickle, pool dies mid-flight) degrade to the sequential schedule;
    # model errors raised inside a worker propagate unchanged because
    # they are not in the caught set.  Shared by the sharded MC paths
    # here and in :mod:`repro.yieldsim.spatial`, and — with a
    # long-lived ``pool`` — by the serve process backend
    # (:mod:`repro.serve.backend`), which amortizes worker startup
    # across flushes instead of paying it per call.  A caller-owned
    # pool is never shut down here, even when it turns out broken.
    import warnings

    try:
        if pool is not None:
            futures = [pool.submit(fn, *args) for args in argsets]
            return [f.result() for f in futures]
        with ProcessPoolExecutor(max_workers=len(argsets)) as tmp_pool:
            futures = [tmp_pool.submit(fn, *args) for args in argsets]
            return [f.result() for f in futures]
    except (OSError, RuntimeError, ImportError, pickle.PicklingError,
            TypeError) as exc:
        warnings.warn(
            f"process-pool execution unavailable ({exc!r}); "
            f"running the same schedule sequentially in-process",
            ParallelExecutionWarning, stacklevel=2)
        return [fn(*args) for args in argsets]
