"""Yield modeling: eqs. (6)–(7) of the paper plus the classical baselines.

The paper factors yield as ``Y = Y_fnc · Y_par`` — functional yield from
spot defects times parametric yield from global process disturbances —
and focuses on Y_fnc via a feature-size-aware Poisson model.  This
package implements:

* :mod:`~repro.yieldsim.models` — Poisson (eqs. 6 and 7), Murphy, Seeds,
  Bose–Einstein, negative-binomial, and the Scenario-#2 reference-area
  law ``Y_0^{A/A_0}``.
* :mod:`~repro.yieldsim.defects` — the Fig.-5 defect size distribution
  (uniform core, ``1/R^p`` tail) with sampling and moments.
* :mod:`~repro.yieldsim.critical_area` — analytic critical areas for
  shorts and opens in parallel-wire layouts.
* :mod:`~repro.yieldsim.monte_carlo` — a spot-defect wafer-map simulator
  used to cross-validate the closed forms.
* :mod:`~repro.yieldsim.parallel` — process-sharded Monte Carlo lots on
  ``SeedSequence.spawn`` child streams (bitwise independent of worker
  count), with the :class:`~repro.yieldsim.parallel.LotResult` container.
* :mod:`~repro.yieldsim.selection` — maximum-likelihood fits of every
  closed-form law to simulated lots with AIC/BIC model ranking.
* :mod:`~repro.yieldsim.redundancy` — row/column spare repair for
  memories (Scenario #1's "appropriately designed redundant components").
* :mod:`~repro.yieldsim.parametric` — Gaussian parametric yield.
"""

from .models import (
    BoseEinsteinYield,
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    ReferenceAreaYield,
    SeedsYield,
    YieldModel,
    poisson_yield,
    scaled_poisson_yield,
)
from .defects import DefectSizeDistribution
from .critical_area import (
    critical_area_open,
    critical_area_short,
    average_critical_area,
    WirePattern,
)
from .monte_carlo import SpotDefectSimulator, WaferMap
from .parallel import (
    LotResult,
    ParallelExecutionWarning,
    simulate_lot_sharded,
    spawn_wafer_seeds,
)
from .redundancy import RedundantMemoryYield
from .parametric import ParametricYield, CompositeYield
from .learning import RampEconomics, YieldLearningCurve
from .spatial import (
    RadialDefectProfile,
    simulate_radial_lot,
    wafer_size_penalty,
)
from .budget import (
    LayerAllocation,
    LayerDefectivity,
    allocate_cleaning,
    plan_for_yield,
    required_total_density,
)
from .selection import (
    DEFAULT_LAWS,
    FittedYieldLaw,
    ModelSelectionReport,
    fit_yield_models,
)
from .estimation import (
    FitReport,
    clustering_detected,
    estimate_clustering_alpha,
    estimate_density_from_yield,
    estimate_density_poisson,
    fit_lot,
    pooled_window_method,
    window_method,
)

__all__ = [
    "YieldModel",
    "PoissonYield",
    "MurphyYield",
    "SeedsYield",
    "BoseEinsteinYield",
    "NegativeBinomialYield",
    "CompoundPoissonGamma",
    "HierarchicalYieldModel",
    "MixtureYieldModel",
    "ReferenceAreaYield",
    "poisson_yield",
    "scaled_poisson_yield",
    "DefectSizeDistribution",
    "WirePattern",
    "critical_area_short",
    "critical_area_open",
    "average_critical_area",
    "SpotDefectSimulator",
    "WaferMap",
    "LotResult",
    "ParallelExecutionWarning",
    "simulate_lot_sharded",
    "spawn_wafer_seeds",
    "RedundantMemoryYield",
    "ParametricYield",
    "CompositeYield",
    "YieldLearningCurve",
    "RampEconomics",
    "FitReport",
    "fit_lot",
    "estimate_density_poisson",
    "estimate_density_from_yield",
    "estimate_clustering_alpha",
    "window_method",
    "pooled_window_method",
    "clustering_detected",
    "DEFAULT_LAWS",
    "FittedYieldLaw",
    "ModelSelectionReport",
    "fit_yield_models",
    "LayerDefectivity",
    "LayerAllocation",
    "allocate_cleaning",
    "required_total_density",
    "plan_for_yield",
    "RadialDefectProfile",
    "wafer_size_penalty",
    "simulate_radial_lot",
]
