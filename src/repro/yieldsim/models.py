"""Functional yield models.

The paper's working model is the Poisson law (eq. 6)

.. math:: Y = \\exp(-A_{ch} D_0)

refined (eq. 7) by making the effective defect density feature-size
aware, ``D_0 \\to D / \\lambda^p``, and expressing the chip area through
eq. (5), giving

.. math:: Y = \\exp\\Big[-\\frac{N_{tr}\\, d_d\\, D}{\\lambda^{p-2}}\\Big]

with ``p`` experimentally in 4–5.  The classical alternatives (Murphy,
Seeds, Bose–Einstein, negative binomial) are implemented as baselines:
they all share the dimensionless *fault expectation* ``m = A·D_eff`` and
differ only in how defect clustering maps ``m`` to yield, so they are
expressed here as subclasses of a common :class:`YieldModel`.

The compound/hierarchical family (Bogdanov et al., "Statistical Yield
Modeling for IC Manufacture: Hierarchical Fault Distributions") builds
the clustered laws *constructively*: :class:`CompoundPoissonGamma`
mixes Poisson statistics over a mean-1 gamma density distribution
(recovering the negative binomial in closed form — a built-in
self-check), :class:`HierarchicalYieldModel` adds a second, lot-level
mixing stage on fixed Gauss–Laguerre nodes, and
:class:`MixtureYieldModel` combines any yield laws into a population
mixture.  All three keep the scalar-reference semantics that
:mod:`repro.batch.engine` replays bitwise (see
``docs/yield-models.md``).

Units: areas in cm², defect densities in defects/cm², ``lam`` (λ) in
microns.  The λ-scaling in :func:`scaled_poisson_yield` follows the
paper in treating ``D/λ^p`` as a numeric recipe with λ in microns — D's
units absorb the microns^p factor, exactly as in the paper's fitted
constants (D = 1.72, p = 4.07 for the Fig.-8 fab).
"""

from __future__ import annotations

import functools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive


class YieldModel(ABC):
    """A map from fault expectation ``m = A·D`` to functional yield.

    Subclasses implement :meth:`yield_from_expectation`; the convenience
    entry points :meth:`yield_for_area` and :meth:`fault_expectation`
    are shared.
    """

    @abstractmethod
    def yield_from_expectation(self, m: float) -> float:
        """Yield for a die with fault expectation ``m`` (dimensionless)."""

    def yield_for_area(self, area_cm2: float, defect_density_per_cm2: float) -> float:
        """Yield for a die of the given area under the given density."""
        m = self.fault_expectation(area_cm2, defect_density_per_cm2)
        return self.yield_from_expectation(m)

    @staticmethod
    def fault_expectation(area_cm2: float, defect_density_per_cm2: float) -> float:
        """The dimensionless mean fault count ``m = A·D``."""
        require_nonnegative("area_cm2", area_cm2)
        require_nonnegative("defect_density_per_cm2", defect_density_per_cm2)
        return area_cm2 * defect_density_per_cm2

    def defect_density_for_yield(self, area_cm2: float, target_yield: float,
                                 *, tol: float = 1e-12) -> float:
        """Invert the model: the defect density giving ``target_yield``.

        Solved by bisection on ``m`` (every model here is strictly
        decreasing in ``m``), then divided by area.  Used to answer the
        Fig.-4 question: what density does generation λ *require*?
        """
        require_positive("area_cm2", area_cm2)
        require_fraction("target_yield", target_yield, inclusive_low=False)
        if target_yield == 1.0:
            return 0.0
        lo, hi = 0.0, 1.0
        while self.yield_from_expectation(hi) > target_yield:
            hi *= 2.0
            if hi > 1e9:
                raise ParameterError(
                    f"target_yield={target_yield} unreachable under {self!r}")
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if self.yield_from_expectation(mid) > target_yield:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi) / area_cm2


@dataclass(frozen=True)
class PoissonYield(YieldModel):
    """Eq. (6): ``Y = exp(−m)``.  Defects land independently, any defect kills."""

    def yield_from_expectation(self, m: float) -> float:
        """Poisson: ``exp(−m)``."""
        require_nonnegative("m", m)
        return math.exp(-m)


@dataclass(frozen=True)
class MurphyYield(YieldModel):
    """Murphy's model: ``Y = ((1 − e^{−m}) / m)²``.

    Derived by compounding Poisson statistics over a symmetric-triangular
    distribution of die-to-die defect densities; the industry's most
    common "less pessimistic than Poisson" baseline.
    """

    def yield_from_expectation(self, m: float) -> float:
        """Murphy: ``((1 − e^{−m})/m)²``."""
        require_nonnegative("m", m)
        if m == 0.0:
            return 1.0
        # -expm1(-m) = 1 - exp(-m) computed without catastrophic
        # cancellation for small m (plain exp underflows to (1-1)/m = 0).
        return (-math.expm1(-m) / m) ** 2


@dataclass(frozen=True)
class SeedsYield(YieldModel):
    """Seeds' model: ``Y = 1 / (1 + m)``.

    Exponential distribution of densities; the most optimistic of the
    classical compound-Poisson family at large ``m``.
    """

    def yield_from_expectation(self, m: float) -> float:
        """Seeds: ``1/(1 + m)``."""
        require_nonnegative("m", m)
        return 1.0 / (1.0 + m)


@dataclass(frozen=True)
class BoseEinsteinYield(YieldModel):
    """Bose–Einstein model: ``Y = 1 / (1 + m)^n`` for ``n`` critical layers.

    Treats each of ``n`` process layers as an independent Seeds stage.
    """

    n_layers: int = 1

    def __post_init__(self) -> None:
        if self.n_layers < 1:
            raise ParameterError(f"n_layers must be >= 1, got {self.n_layers}")

    def yield_from_expectation(self, m: float) -> float:
        """Bose–Einstein: ``(1 + m/n)^{−n}``."""
        require_nonnegative("m", m)
        return (1.0 + m / self.n_layers) ** (-self.n_layers)


@dataclass(frozen=True)
class NegativeBinomialYield(YieldModel):
    """Stapper's negative-binomial model: ``Y = (1 + m/α)^{−α}``.

    ``alpha`` is the clustering parameter: α → ∞ recovers Poisson,
    α = 1 recovers Seeds.  The de-facto industry standard for clustered
    defects (typical fitted α between 0.3 and 5).
    """

    alpha: float = 2.0

    def __post_init__(self) -> None:
        require_positive("alpha", self.alpha)

    def yield_from_expectation(self, m: float) -> float:
        """Negative binomial: ``(1 + m/α)^{−α}``."""
        require_nonnegative("m", m)
        return (1.0 + m / self.alpha) ** (-self.alpha)


@functools.lru_cache(maxsize=None)
def _gamma_mixing_nodes(alpha: float, n_nodes: int
                        ) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Discretize a mean-1 Gamma(α, 1/α) mixer on Gauss–Laguerre nodes.

    Substituting ``x = α·t`` turns the gamma expectation
    ``E[g(t)] = ∫ g(t)·t^{α−1} e^{−αt} α^α/Γ(α) dt`` into a generalized
    Gauss–Laguerre integral with weight ``x^{α−1} e^{−x}``, so the
    abscissas are ``t_i = x_i/α`` and the weights are the Laguerre
    weights normalized to sum to 1 (making the discrete mixer itself a
    probability distribution).  Computed by Golub–Welsch on the
    generalized-Laguerre Jacobi matrix with the measure's total mass
    set to 1 — unlike ``scipy.special.roots_genlaguerre``, whose
    weights carry a Γ(α+n) factor and overflow beyond α ≈ 170, this
    stays finite for any shape.  Returned as tuples of floats so the
    result is hashable and the scalar/batched evaluators consume the
    *same* cached node set — a precondition of the bitwise parity
    contract.
    """
    import numpy as np
    from scipy.linalg import eigh_tridiagonal

    a = alpha - 1.0
    k = np.arange(n_nodes, dtype=np.float64)
    diag = 2.0 * k + a + 1.0
    off = np.sqrt(k[1:] * (k[1:] + a))
    x, v = eigh_tridiagonal(diag, off)
    weights = [float(val) for val in v[0, :] ** 2]
    total = math.fsum(weights)
    weights = [val / total for val in weights]
    nodes = [float(val) / alpha for val in x]
    return tuple(nodes), tuple(weights)


@dataclass(frozen=True)
class CompoundPoissonGamma(YieldModel):
    """Compound Poisson–gamma yield with its NB equivalence built in.

    Die-level fault counts are Poisson with mean ``m·t`` where the
    density factor ``t`` is drawn per wafer from a mean-preserving
    Gamma(α, 1/α).  Integrating ``exp(−m·t)`` against that mixer gives
    the closed form ``Y = (1 + m/α)^{−α}`` — algebraically Stapper's
    :class:`NegativeBinomialYield`.  This class makes the *derivation*
    executable: :meth:`mixture_yield` evaluates the mixing integral by
    generalized Gauss–Laguerre quadrature and :meth:`self_check`
    asserts it matches the closed form, which is the built-in
    consistency check the two-level :class:`HierarchicalYieldModel`
    relies on (it reuses the same quadrature one level up).
    """

    alpha: float = 2.0

    def __post_init__(self) -> None:
        require_positive("alpha", self.alpha)

    def yield_from_expectation(self, m: float) -> float:
        """Closed form of the gamma mixture: ``(1 + m/α)^{−α}``."""
        require_nonnegative("m", m)
        return (1.0 + m / self.alpha) ** (-self.alpha)

    def negative_binomial_equivalent(self) -> NegativeBinomialYield:
        """The algebraically identical :class:`NegativeBinomialYield`."""
        return NegativeBinomialYield(alpha=self.alpha)

    def mixture_yield(self, m: float, *, n_nodes: int = 48) -> float:
        """The mixing integral ``E_t[exp(−m·t)]`` by quadrature.

        Converges to :meth:`yield_from_expectation` as ``n_nodes``
        grows; :meth:`self_check` pins the agreement.
        """
        require_nonnegative("m", m)
        nodes, weights = _gamma_mixing_nodes(float(self.alpha),
                                             int(n_nodes))
        total = 0.0
        for t, w in zip(nodes, weights):
            total += w * math.exp(-m * t)
        return total if total < 1.0 else 1.0

    def self_check(self, m_points: tuple[float, ...] | None = None,
                   *, n_nodes: int = 48, tol: float = 1e-9) -> float:
        """Assert quadrature == closed form; return the max |error|.

        Raises :class:`~repro.errors.ParameterError` when the
        gamma-mixture quadrature disagrees with the closed-form NB law
        beyond ``tol`` at any probe point — the numerical consistency
        guarantee for every consumer of the quadrature nodes.  The
        default probes span ``m/α`` from 0 to 4 — the mixer's natural
        scale, where the Gauss rule converges fast for *any* α (fixed
        absolute ``m`` probes would demand ever more nodes as α → 0).
        """
        if m_points is None:
            m_points = (0.0, 0.25 * self.alpha, self.alpha,
                        4.0 * self.alpha)
        worst = 0.0
        for m in m_points:
            err = abs(self.mixture_yield(m, n_nodes=n_nodes)
                      - self.yield_from_expectation(m))
            worst = max(worst, err)
        if not worst <= tol:
            raise ParameterError(
                f"CompoundPoissonGamma self-check failed: quadrature "
                f"deviates from the closed form by {worst:.3e} "
                f"(tol {tol:.1e}) at alpha={self.alpha}")
        return worst


@dataclass(frozen=True)
class HierarchicalYieldModel(YieldModel):
    """Two-level hierarchical compound yield (Bogdanov et al.).

    Die-level fault counts are Poisson; the wafer-level density is
    gamma-mixed with shape ``wafer_alpha`` (giving a negative binomial
    per wafer); the *lot-level* mean density is itself drawn from a
    mean-1 Gamma(``lot_alpha``, 1/``lot_alpha``) hyper-distribution.
    Integrating the per-wafer NB law over the lot factor ``t`` gives

    .. math:: Y(m) = E_t\\big[(1 + m t/β)^{−β}\\big],\\quad
              t \\sim Γ(α_{lot}, 1/α_{lot}),\\ β = α_{wafer}

    evaluated on the fixed generalized Gauss–Laguerre node set from
    :func:`_gamma_mixing_nodes` — the model is a deterministic pure
    function and hashable, with ``n_nodes`` part of its identity (two
    instances with different node counts are different models).  Both
    α → ∞ limits collapse to the single-level laws: ``lot_alpha → ∞``
    recovers NB(``wafer_alpha``); ``wafer_alpha → ∞`` recovers
    NB(``lot_alpha``).
    """

    lot_alpha: float = 2.0
    wafer_alpha: float = 2.0
    n_nodes: int = 32

    def __post_init__(self) -> None:
        require_positive("lot_alpha", self.lot_alpha)
        require_positive("wafer_alpha", self.wafer_alpha)
        if not isinstance(self.n_nodes, int) or isinstance(self.n_nodes, bool):
            raise ParameterError(
                f"n_nodes must be an int, got {self.n_nodes!r}")
        if not 2 <= self.n_nodes <= 512:
            raise ParameterError(
                f"n_nodes must be in [2, 512], got {self.n_nodes}")

    def mixing_nodes(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """The (nodes, weights) lot-factor discretization, cached."""
        return _gamma_mixing_nodes(float(self.lot_alpha), self.n_nodes)

    def yield_from_expectation(self, m: float) -> float:
        """Lot-mixed NB: ``Σ_i w_i (1 + m t_i/β)^{−β}``.

        The node loop accumulates left-to-right; the batched kernel in
        :mod:`repro.batch.engine` replays exactly this operation order,
        which is what makes batched-vs-scalar evaluation bitwise
        identical.
        """
        require_nonnegative("m", m)
        if m == 0.0:
            return 1.0
        nodes, weights = self.mixing_nodes()
        beta = self.wafer_alpha
        total = 0.0
        for t, w in zip(nodes, weights):
            total += w * (1.0 + (m * t) / beta) ** (-beta)
        return total if total < 1.0 else 1.0


@dataclass(frozen=True)
class MixtureYieldModel(YieldModel):
    """A finite population mixture of yield laws.

    ``components`` is a sequence of ``(weight, model)`` pairs with
    positive weights summing to 1 (within 1e-9): the lot is modeled as
    coming from distinguishable sub-populations — e.g. a mostly-clean
    line with a clustered tail — and the pooled yield is the weighted
    average of the component yields.  Frozen and hashable whenever the
    component models are, so structurally equal mixtures coalesce in
    :mod:`repro.serve`.
    """

    components: tuple[tuple[float, YieldModel], ...] = ()

    def __post_init__(self) -> None:
        pairs = []
        for entry in self.components:
            try:
                weight, sub = entry
            except (TypeError, ValueError):
                raise ParameterError(
                    f"mixture components must be (weight, model) pairs, "
                    f"got {entry!r}") from None
            if not isinstance(sub, YieldModel):
                raise ParameterError(
                    f"mixture component {sub!r} is not a YieldModel")
            weight = float(weight)
            if not weight > 0.0:
                raise ParameterError(
                    f"mixture weights must be > 0, got {weight}")
            pairs.append((weight, sub))
        if not pairs:
            raise ParameterError(
                "MixtureYieldModel needs at least one component")
        total = math.fsum(w for w, _ in pairs)
        if abs(total - 1.0) > 1e-9:
            raise ParameterError(
                f"mixture weights must sum to 1, got {total!r}")
        object.__setattr__(self, "components", tuple(pairs))

    def yield_from_expectation(self, m: float) -> float:
        """Weighted average of component yields, in component order."""
        require_nonnegative("m", m)
        total = 0.0
        for w, sub in self.components:
            total += w * sub.yield_from_expectation(m)
        return total if total < 1.0 else 1.0


@dataclass(frozen=True)
class ReferenceAreaYield(YieldModel):
    """Scenario #2's empirical law: ``Y = Y_0^{A / A_0}`` (eq. 9 denominator).

    Mathematically a Poisson law with ``D = −ln(Y_0)/A_0``, but stated
    the way fabs quote it ("70% for a 1 cm² die").  The fault
    expectation convention is ``m = (A/A_0)·(−ln Y_0)`` so that the
    shared :meth:`YieldModel.yield_for_area` contract still holds when
    the caller supplies the implied density.
    """

    reference_yield: float = 0.7
    reference_area_cm2: float = 1.0

    def __post_init__(self) -> None:
        require_fraction("reference_yield", self.reference_yield,
                         inclusive_low=False)
        require_positive("reference_area_cm2", self.reference_area_cm2)

    @property
    def implied_defect_density_per_cm2(self) -> float:
        """The Poisson density equivalent to this (Y_0, A_0) pair."""
        return -math.log(self.reference_yield) / self.reference_area_cm2

    def yield_from_expectation(self, m: float) -> float:
        """Poisson form on the implied-density convention."""
        require_nonnegative("m", m)
        return math.exp(-m)

    def yield_for_die_area(self, area_cm2: float) -> float:
        """Direct form ``Y_0^{A/A_0}`` without going through a density."""
        require_nonnegative("area_cm2", area_cm2)
        return self.reference_yield ** (area_cm2 / self.reference_area_cm2)


def poisson_yield(area_cm2: float, defect_density_per_cm2: float) -> float:
    """Eq. (6) as a plain function: ``Y = exp(−A·D₀)``."""
    return PoissonYield().yield_for_area(area_cm2, defect_density_per_cm2)


def scaled_poisson_yield(n_transistors: float, design_density: float,
                         defect_coefficient: float, feature_size_um: float,
                         p: float) -> float:
    """Eq. (7): ``Y = exp[−N_tr·d_d·D / λ^{p−2}]``.

    Parameters follow the paper: ``defect_coefficient`` is D (the
    λ-independent defect characterization constant; the fitted fab of
    Sec. IV.B has D = 1.72), ``p`` the defect size distribution exponent
    (experimentally 4–5), ``feature_size_um`` λ in microns.

    Units: eq. (7) substitutes ``A_ch = N_tr·d_d·λ²`` into eq. (6)'s
    ``exp(−A_ch·D₀)`` with ``D₀ = D/λ^p``.  A_ch·D₀ is dimensionless
    only if the area (µm² when λ is in µm) and the density are
    consistent; we take D in defects/cm² *referenced at λ = 1 µm*
    (i.e. ``D = D₀(λ)·λ^p`` with λ in microns), which makes the fitted
    D = 1.72 correspond to the plausible physical density D₀ ≈ 1.7/cm²
    at the 1 µm node and reproduces a Fig.-8 landscape with interior
    optima.  Hence the 1e-8 µm²→cm² factor below.
    """
    require_positive("n_transistors", n_transistors)
    require_positive("design_density", design_density)
    require_nonnegative("defect_coefficient", defect_coefficient)
    require_positive("feature_size_um", feature_size_um)
    require_positive("p", p)
    area_cm2 = n_transistors * design_density \
        * (feature_size_um * feature_size_um) * 1.0e-8
    d0_per_cm2 = defect_coefficient / feature_size_um ** p
    exponent = area_cm2 * d0_per_cm2
    # Guard against underflow-to-zero surprising callers that divide by Y:
    # exp() underflows to 0.0 below ~-745; the caller-facing contract is a
    # positive float, so clamp at the smallest positive normal instead.
    if exponent > 700.0:
        return 5e-324
    return math.exp(-exponent)
