"""Parametric yield and the composite ``Y = Y_fnc · Y_par`` factorization.

The paper (Sec. III.C) splits yield loss into functional failures from
spot defects and *parametric* failures from global process disturbances
— dies that work logically but miss a spec (delay, power) because a
process parameter drifted.  The paper then sets Y_par aside ("we assume
that parametric yield loss is not of primary importance"); we implement
it anyway so the factorization is a real, testable object and so the
sensitivity/ablation benches can quantify what ignoring it costs.

Model: each monitored performance ``g_i`` is a linearized function of a
Gaussian process parameter vector; a die passes if every ``g_i`` lies
within its spec window.  With independent linearized responses the pass
probability is a product of Gaussian interval probabilities — the
classical worst-case-distance / design-centering setup in its simplest
orthogonal form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ParameterError
from ..units import require_fraction, require_positive


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class PerformanceSpec:
    """One monitored performance with a Gaussian process response.

    The performance is ``g = nominal + sigma·Z`` with Z standard normal
    (the linearized lumping of all global disturbances affecting it);
    the die passes this spec when ``lower <= g <= upper``.  Use
    ``-inf`` / ``+inf`` for one-sided specs.
    """

    name: str
    nominal: float
    sigma: float
    lower: float = -math.inf
    upper: float = math.inf

    def __post_init__(self) -> None:
        require_positive("sigma", self.sigma)
        if not self.lower < self.upper:
            raise ParameterError(
                f"spec {self.name!r}: lower bound {self.lower} must be below "
                f"upper bound {self.upper}")

    @property
    def pass_probability(self) -> float:
        """P(lower <= g <= upper) under the Gaussian response."""
        z_hi = (self.upper - self.nominal) / self.sigma
        z_lo = (self.lower - self.nominal) / self.sigma
        return max(_phi(z_hi) - _phi(z_lo), 0.0)

    def centered(self) -> "PerformanceSpec":
        """The same spec with the nominal moved to the window center.

        For two-sided finite windows this is the optimal design-centering
        move under this model; one-sided specs are returned unchanged.
        """
        if math.isinf(self.lower) or math.isinf(self.upper):
            return self
        mid = 0.5 * (self.lower + self.upper)
        return PerformanceSpec(name=self.name, nominal=mid, sigma=self.sigma,
                               lower=self.lower, upper=self.upper)


@dataclass(frozen=True)
class ParametricYield:
    """Parametric yield as a product of independent spec pass rates."""

    specs: tuple[PerformanceSpec, ...] = field(default_factory=tuple)

    @classmethod
    def from_specs(cls, specs: Sequence[PerformanceSpec]) -> "ParametricYield":
        """Build from any sequence of specs."""
        return cls(specs=tuple(specs))

    @property
    def value(self) -> float:
        """The parametric yield Y_par (1.0 when no specs are monitored)."""
        y = 1.0
        for spec in self.specs:
            y *= spec.pass_probability
        return y

    def dominant_loss(self) -> PerformanceSpec | None:
        """The spec with the lowest pass probability, or None if empty."""
        if not self.specs:
            return None
        return min(self.specs, key=lambda s: s.pass_probability)

    def centered(self) -> "ParametricYield":
        """All two-sided specs re-centered (idealized design centering)."""
        return ParametricYield(specs=tuple(s.centered() for s in self.specs))


@dataclass(frozen=True)
class CompositeYield:
    """The paper's factorization ``Y = Y_fnc · Y_par``.

    ``functional`` is any already-evaluated functional yield value (from
    the models in :mod:`repro.yieldsim.models` or the Monte Carlo
    simulator); ``parametric`` is a :class:`ParametricYield`.
    """

    functional: float
    parametric: ParametricYield = field(default_factory=ParametricYield)

    def __post_init__(self) -> None:
        require_fraction("functional", self.functional)

    @property
    def value(self) -> float:
        """Total yield."""
        return self.functional * self.parametric.value

    @property
    def parametric_share_of_loss(self) -> float:
        """Fraction of total yield *loss* attributable to parametrics.

        Defined as ``(Y_fnc − Y) / (1 − Y)``; zero when parametric yield
        is 1 (the paper's working assumption), zero-by-convention when
        there is no loss at all.
        """
        total = self.value
        if total >= 1.0:
            return 0.0
        return (self.functional - total) / (1.0 - total)
