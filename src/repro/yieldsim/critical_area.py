"""Critical-area analysis for spot defects.

The paper's Sec. III.C explains functional yield loss through disk-
shaped "extra material" / "missing material" defects: whether a defect
of radius R at a location causes a fault depends on the layout.  The
*critical area* A_c(R) is the area of locations where a radius-R defect
causes a fault; integrating it against the defect size density gives
the average critical area, and ``λ̄ = A_c_avg · D`` is the fault
expectation that feeds any :class:`~repro.yieldsim.models.YieldModel`.

We implement the canonical closed forms for the regular parallel-wire
pattern (width w, spacing s) that underlies the standard derivations
(Stapper; Maly's own ICCAD/Proc. IEEE work [25]):

* shorts (extra-material disk bridging two wires):
  zero for 2R < s; grows linearly toward the full pattern area.
* opens (missing-material disk severing one wire):
  zero for 2R < w; symmetric in w ↔ s.

These forms, combined with the Fig.-5 size distribution, *derive* the
``D/λ^p`` scaling that eq. (7) postulates — see
:func:`average_critical_area` and the integration test in
``tests/yieldsim/test_critical_area.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import integrate

from ..errors import ParameterError
from ..units import require_positive
from .defects import DefectSizeDistribution


@dataclass(frozen=True)
class WirePattern:
    """A periodic parallel-wire layout region.

    Parameters
    ----------
    wire_width_um:
        Drawn wire width ``w`` in microns.
    wire_spacing_um:
        Gap ``s`` between adjacent wires in microns.
    area_cm2:
        Total area of the patterned region in cm².
    """

    wire_width_um: float
    wire_spacing_um: float
    area_cm2: float

    def __post_init__(self) -> None:
        require_positive("wire_width_um", self.wire_width_um)
        require_positive("wire_spacing_um", self.wire_spacing_um)
        require_positive("area_cm2", self.area_cm2)

    @property
    def pitch_um(self) -> float:
        """Wire pitch ``w + s`` in microns."""
        return self.wire_width_um + self.wire_spacing_um

    @classmethod
    def at_feature_size(cls, feature_size_um: float, area_cm2: float) -> "WirePattern":
        """Minimum-pitch pattern at feature size λ: width = spacing = λ."""
        return cls(wire_width_um=feature_size_um, wire_spacing_um=feature_size_um,
                   area_cm2=area_cm2)


def critical_area_short(pattern: WirePattern, defect_radius_um: float) -> float:
    """Critical area (cm²) for extra-material shorts at one defect radius.

    For a disk of diameter ``x = 2R`` over wires at pitch ``w + s``:
    no short is possible for ``x < s``; for ``s ≤ x < 2s + w`` the
    critical stripe per pitch is ``x − s`` wide; beyond that every
    location shorts at least one pair, and the per-pitch critical width
    saturates at the pitch (the fraction cannot exceed 1).
    """
    if defect_radius_um < 0:
        raise ParameterError("defect_radius_um must be >= 0")
    x = 2.0 * defect_radius_um
    s, pitch = pattern.wire_spacing_um, pattern.pitch_um
    if x <= s:
        return 0.0
    fraction = min((x - s) / pitch, 1.0)
    return fraction * pattern.area_cm2


def critical_area_open(pattern: WirePattern, defect_radius_um: float) -> float:
    """Critical area (cm²) for missing-material opens at one defect radius.

    Mirror image of :func:`critical_area_short` with the roles of wire
    width and spacing exchanged: a disk of diameter ``x`` severs a wire
    only when ``x > w``.
    """
    if defect_radius_um < 0:
        raise ParameterError("defect_radius_um must be >= 0")
    x = 2.0 * defect_radius_um
    w, pitch = pattern.wire_width_um, pattern.pitch_um
    if x <= w:
        return 0.0
    fraction = min((x - w) / pitch, 1.0)
    return fraction * pattern.area_cm2


def average_critical_area(pattern: WirePattern,
                          distribution: DefectSizeDistribution,
                          *, mechanism: str = "short",
                          max_radius_factor: float = 200.0) -> float:
    """Size-distribution-weighted critical area, in cm².

    .. math:: \\bar A_c = \\int_0^\\infty A_c(R)\\, f(R)\\, dR

    Multiplying by the physical defect density D (defects/cm²) gives the
    fault expectation for the pattern.  The integral is evaluated
    piecewise (the integrand has kinks at the onset radius and the
    saturation radius) with an analytic tail beyond
    ``max_radius_factor · R_0``, where the 1/R^p density makes the
    saturated contribution ``A_pattern · survival(R)``.
    """
    if mechanism == "short":
        onset = pattern.wire_spacing_um / 2.0
        area_fn = critical_area_short
    elif mechanism == "open":
        onset = pattern.wire_width_um / 2.0
        area_fn = critical_area_open
    else:
        raise ParameterError(f"unknown mechanism {mechanism!r}")

    saturation = onset + pattern.pitch_um / 2.0
    cutoff = max(max_radius_factor * distribution.r0_um, 4.0 * saturation)

    def integrand(r: float) -> float:
        return area_fn(pattern, r) * float(distribution.pdf(r))

    breakpoints = sorted({onset, distribution.r0_um, saturation, cutoff})
    total = 0.0
    lo = onset
    for hi in breakpoints:
        if hi <= lo:
            continue
        part, _err = integrate.quad(integrand, lo, hi, limit=200)
        total += part
        lo = hi
    # Analytic tail: above `cutoff` the critical area is the full pattern.
    total += pattern.area_cm2 * float(distribution.survival(cutoff))
    return total


def fault_expectation(pattern: WirePattern,
                      distribution: DefectSizeDistribution,
                      defect_density_per_cm2: float,
                      *, mechanisms: tuple[str, ...] = ("short", "open")) -> float:
    """Mean fault count for the pattern: ``sum_mech A_c_avg · D``.

    Assumes the same physical density for each mechanism (extra- and
    missing-material populations are typically tracked separately in a
    fab; pass a single mechanism and call twice for distinct densities).
    """
    require_positive("defect_density_per_cm2", defect_density_per_cm2)
    return sum(
        average_critical_area(pattern, distribution, mechanism=mech)
        for mech in mechanisms
    ) * defect_density_per_cm2


def effective_density_scaling_exponent(distribution: DefectSizeDistribution,
                                       area_cm2: float = 0.1,
                                       lam_low_um: float = 0.3,
                                       lam_high_um: float = 1.0) -> float:
    """Empirical exponent q in ``fault density ∝ 1/λ^q`` for minimum-pitch wires.

    Computes the average critical area of a minimum-pitch pattern at two
    feature sizes and returns the log-log slope of fault expectation vs
    λ.  For the Fig.-5 distribution with tail exponent p, substituting
    R = λu into the tail integral gives Ā_c ∝ λ^{1−p}, i.e. **q = p − 1**
    at fixed pattern area once both dimensions sit in the tail.  This is
    the layout-level origin of eq. (7)'s power-of-λ yield penalty; note
    the paper's ``D/λ^p`` substitution is one power of λ steeper than
    this minimum-pitch-wire derivation — it additionally folds in the
    shrink of the *defect population floor* with λ (contamination
    standards tighten each generation, Fig. 4), which this fixed-R₀
    model deliberately holds constant.
    """
    require_positive("lam_low_um", lam_low_um)
    require_positive("lam_high_um", lam_high_um)
    if lam_low_um >= lam_high_um:
        raise ParameterError("lam_low_um must be < lam_high_um")
    ac_low = sum(
        average_critical_area(WirePattern.at_feature_size(lam_low_um, area_cm2),
                              distribution, mechanism=m) for m in ("short", "open"))
    ac_high = sum(
        average_critical_area(WirePattern.at_feature_size(lam_high_um, area_cm2),
                              distribution, mechanism=m) for m in ("short", "open"))
    return math.log(ac_low / ac_high) / math.log(lam_high_um / lam_low_um)
