"""Defect size distribution — Fig. 5 of the paper.

The paper adopts the "most widely accepted" size density: flat (rising
as R) up to a peak radius ``R_0`` and decaying as ``1/R^p`` above it,
with ``p`` experimentally between 4 and 5.  The canonical normalized
form (Stapper / Ferris-Prabhu) used here is

.. math::

    f(R) = \\begin{cases}
        c\\, R / R_0^2            & 0 \\le R \\le R_0 \\\\
        c\\, R_0^{p-1} / R^p      & R > R_0
    \\end{cases}
    \\qquad c = \\frac{2(p-1)}{p+1}
    \\text{(so that } \\int_0^\\infty f = 1\\text{)}

This module provides the pdf/cdf, moments, inverse-cdf sampling, and
the "critical fraction" — the probability a defect is larger than a
given kill radius, which is what makes shrinking λ "rapidly increase
the number of defects which may cause faults" (the paper's observation
under Fig. 5) and ultimately justifies the ``D/λ^p`` substitution in
eq. (7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..units import require_positive


@dataclass(frozen=True)
class DefectSizeDistribution:
    """The Fig.-5 defect size density: linear rise to R_0, 1/R^p tail.

    Parameters
    ----------
    r0_um:
        Peak defect radius R_0 in microns (set by the contamination
        environment; typically near or below the minimum feature size).
    p:
        Tail exponent; the paper reports fitted values 4–5 (4.07 for
        the Sec.-IV.B fab).  Must exceed 1 for normalizability; moments
        of order k exist only for p > k + 1.
    """

    r0_um: float
    p: float

    def __post_init__(self) -> None:
        require_positive("r0_um", self.r0_um)
        require_positive("p", self.p)
        if self.p <= 1.0:
            raise ParameterError(f"tail exponent p must exceed 1, got {self.p}")

    @property
    def _c(self) -> float:
        """Normalization constant c = 2(p−1)/(p+1) (dimensionless)."""
        return 2.0 * (self.p - 1.0) / (self.p + 1.0)

    def pdf(self, r_um):
        """Probability density at radius ``r_um`` (vectorized), in 1/µm."""
        r = np.asarray(r_um, dtype=float)
        if np.any(r < 0):
            raise ParameterError("defect radius must be >= 0")
        c, r0 = self._c, self.r0_um
        below = c * r / (r0 * r0)
        # np.where evaluates both branches; the tail expression can
        # overflow harmlessly for radii in the core region.
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            above = c * r0 ** (self.p - 1.0) \
                / np.where(r > 0, r, 1.0) ** self.p
        out = np.where(r <= r0, below, above)
        return out if out.shape else float(out)

    def cdf(self, r_um):
        """P(defect radius ≤ r) (vectorized)."""
        r = np.asarray(r_um, dtype=float)
        if np.any(r < 0):
            raise ParameterError("defect radius must be >= 0")
        c, p, r0 = self._c, self.p, self.r0_um
        below = c * r * r / (2.0 * r0 * r0)
        cdf_at_r0 = c / 2.0
        safe_r = np.where(r > 0, r, r0)
        # Both np.where branches are evaluated; the tail branch may
        # overflow for core-region radii and is then discarded.
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            above = cdf_at_r0 \
                + c / (p - 1.0) * (1.0 - (r0 / safe_r) ** (p - 1.0))
        out = np.where(r <= r0, below, above)
        return out if out.shape else float(out)

    def survival(self, r_um):
        """Critical fraction P(defect radius > r).

        For a layout whose smallest kill radius scales with λ, this is
        the factor by which feature-size shrink inflates the *fault*
        density at constant physical defect density — the mechanism
        behind eq. (7)'s ``D/λ^p``.
        """
        return 1.0 - np.asarray(self.cdf(r_um))

    def mean_um(self) -> float:
        """Mean defect radius in microns (requires p > 2)."""
        if self.p <= 2.0:
            raise ParameterError(f"mean requires p > 2, got p={self.p}")
        c, p, r0 = self._c, self.p, self.r0_um
        return c * r0 * (1.0 / 3.0 + 1.0 / (p - 2.0))

    def moment_um(self, order: int) -> float:
        """Raw moment E[R^order] in microns^order (requires p > order + 1)."""
        if order < 1:
            raise ParameterError(f"order must be >= 1, got {order}")
        if self.p <= order + 1.0:
            raise ParameterError(
                f"moment of order {order} requires p > {order + 1}, got p={self.p}")
        c, p, r0 = self._c, self.p, self.r0_um
        return c * r0 ** order * (1.0 / (order + 2.0) + 1.0 / (p - 1.0 - order))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` defect radii (microns) by inverse-cdf sampling."""
        if n < 0:
            raise ParameterError(f"n must be >= 0, got {n}")
        u = rng.random(n)
        c, p, r0 = self._c, self.p, self.r0_um
        cdf_at_r0 = c / 2.0
        out = np.empty(n)
        core = u <= cdf_at_r0
        # Invert c r^2 / (2 r0^2) = u  =>  r = r0 sqrt(2u/c).
        out[core] = r0 * np.sqrt(2.0 * u[core] / c)
        # Invert c/2 + c/(p-1) (1 - (r0/r)^{p-1}) = u.
        tail_frac = 1.0 - (u[~core] - cdf_at_r0) * (p - 1.0) / c
        out[~core] = r0 * tail_frac ** (-1.0 / (p - 1.0))
        return out

    def fault_density_scale(self, kill_radius_um: float,
                            reference_kill_radius_um: float) -> float:
        """Ratio of fault densities between two kill radii.

        ``survival(kill) / survival(reference_kill)``: the factor by
        which moving from a layout that dies at ``reference_kill`` to
        one that dies at ``kill`` multiplies the effective D₀.  In the
        deep tail this approaches ``(reference/kill)^{p-1}``, the
        analytic origin of the paper's λ-power scaling.
        """
        require_positive("kill_radius_um", kill_radius_um)
        require_positive("reference_kill_radius_um", reference_kill_radius_um)
        denom = float(self.survival(reference_kill_radius_um))
        if denom == 0.0:
            raise ParameterError(
                "reference kill radius lies beyond all defects (survival = 0)")
        return float(self.survival(kill_radius_um)) / denom
