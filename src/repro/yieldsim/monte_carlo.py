"""Spot-defect Monte Carlo wafer-map simulator.

Cross-validates the closed-form yield models: defects are thrown onto a
wafer as a (possibly clustered) point process with radii drawn from the
Fig.-5 size distribution; each die is killed if any defect lands on it
with a radius exceeding the die's kill threshold.  With a homogeneous
Poisson process the simulated yield must converge to eq. (6) with
``D_eff = D · survival(kill_radius)``; with gamma-mixed density it must
converge to the negative-binomial model — both convergences are asserted
in ``tests/yieldsim/test_monte_carlo.py`` (single-stream path) and
``tests/yieldsim/test_parallel.py`` (sharded path, at the larger lot
sizes the process-parallel runner makes affordable).

The simulator also produces per-die defect counts (a *wafer map*),
which downstream consumers use for redundancy/repair studies.  Lots can
be sharded across processes on spawned seed streams via
:mod:`repro.yieldsim.parallel` — ``simulate_lot(n, seed=s, workers=k)``
is bitwise independent of ``k``; that contract is pinned by
``tests/yieldsim/test_parallel.py`` and
``tests/property_based/test_parallel_parity.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ParameterError
from ..geometry import Die, Wafer, best_grid_offset
from ..obs import metrics as _metrics, span as _span
from ..units import require_nonnegative, require_positive
from .defects import DefectSizeDistribution


@dataclass(frozen=True)
class WaferMap:
    """Result of simulating one wafer.

    ``die_centers_cm`` is an (N, 2) array of die center coordinates,
    ``defect_counts`` the number of *killer* defects on each die, and
    ``n_defects_total`` the number of physical defects thrown (killer or
    not) for bookkeeping.
    """

    die_centers_cm: np.ndarray
    defect_counts: np.ndarray
    n_defects_total: int

    @property
    def n_dies(self) -> int:
        """Number of complete dies on the wafer."""
        return int(self.defect_counts.shape[0])

    @property
    def n_good(self) -> int:
        """Number of dies with zero killer defects."""
        return int(np.count_nonzero(self.defect_counts == 0))

    @property
    def yield_fraction(self) -> float:
        """Good dies divided by total dies."""
        if self.n_dies == 0:
            return 0.0
        return self.n_good / self.n_dies


@dataclass
class SpotDefectSimulator:
    """Throw spot defects at wafers and grade the resulting dies.

    Parameters
    ----------
    wafer, die:
        Geometry; dies are placed on the phase-optimized grid from
        :func:`repro.geometry.best_grid_offset`.
    defect_density_per_cm2:
        Mean physical defect density D over the wafer.
    size_distribution:
        Fig.-5 distribution for defect radii; ``None`` makes every
        defect a killer regardless of size (pure eq.-6 regime).
    kill_radius_um:
        Minimum defect radius that causes a fault (a lumped stand-in
        for the layout's critical-area onset; compare
        :mod:`repro.yieldsim.critical_area`).  Ignored when
        ``size_distribution`` is ``None``.
    clustering_alpha:
        ``None`` for a homogeneous Poisson defect count per wafer;
        otherwise the wafer-to-wafer density is gamma-distributed with
        shape ``alpha`` (mean preserved), which drives the per-die
        statistics toward the negative-binomial yield model.
    lot_alpha:
        ``None`` for independent wafers; otherwise each *lot* draws one
        mean-1 Gamma(``lot_alpha``, 1/``lot_alpha``) factor that scales
        every wafer's mean density — the two-level hierarchy of
        :class:`~repro.yieldsim.models.HierarchicalYieldModel`
        (combined with ``clustering_alpha`` as the wafer level).  The
        lot factor is drawn from its own spawned child stream on the
        ``seed=`` path, so worker-count invariance is preserved; on
        the legacy ``rng`` path it is the first draw of the lot.
    """

    wafer: Wafer
    die: Die
    defect_density_per_cm2: float
    size_distribution: DefectSizeDistribution | None = None
    kill_radius_um: float = 0.0
    clustering_alpha: float | None = None
    lot_alpha: float | None = None
    _grid: tuple[float, float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        require_nonnegative("defect_density_per_cm2", self.defect_density_per_cm2)
        require_nonnegative("kill_radius_um", self.kill_radius_um)
        if self.clustering_alpha is not None:
            require_positive("clustering_alpha", self.clustering_alpha)
        if self.lot_alpha is not None:
            require_positive("lot_alpha", self.lot_alpha)
        ox, oy, n = best_grid_offset(self.wafer, self.die)
        if n <= 0:
            raise ParameterError("die does not fit on the wafer")
        self._grid = (ox, oy)

    def _die_centers(self) -> np.ndarray:
        ox, oy = self._grid
        r = self.wafer.usable_radius_cm
        px, py = self.die.pitch_x_cm, self.die.pitch_y_cm
        w, h = self.die.width_cm, self.die.height_cm
        centers = []
        j_lo = math.floor((-r - oy) / py) - 1
        j_hi = math.ceil((r - oy) / py) + 1
        i_lo = math.floor((-r - ox) / px) - 1
        i_hi = math.ceil((r - ox) / px) + 1
        r2 = r * r
        for j in range(j_lo, j_hi + 1):
            y0 = oy + j * py
            y1 = y0 + h
            if max(y0 * y0, y1 * y1) > r2:
                continue
            half = math.sqrt(r2 - max(y0 * y0, y1 * y1))
            for i in range(i_lo, i_hi + 1):
                x0 = ox + i * px
                x1 = x0 + w
                if -half <= x0 and x1 <= half:
                    centers.append((x0 + w / 2.0, y0 + h / 2.0))
        return np.asarray(centers, dtype=float).reshape(-1, 2)

    def simulate_wafer(self, rng: np.random.Generator) -> WaferMap:
        """Simulate one wafer and return its map."""
        return self.simulate_lot(1, rng)[0]

    def _lot_density_scale(self, rng: np.random.Generator) -> float:
        """The lot-level density factor, consumed from ``rng``.

        One mean-1 gamma draw when ``lot_alpha`` is set (and the
        density is positive, matching the wafer-level mixing guard);
        exactly 1.0 — and **no** stream consumption — otherwise, so
        pre-existing non-hierarchical lots replay bit-for-bit.
        """
        if self.lot_alpha is None or self.defect_density_per_cm2 <= 0:
            return 1.0
        return float(rng.gamma(self.lot_alpha, 1.0 / self.lot_alpha))

    def _throw_wafer_defects(self, rng: np.random.Generator,
                             n_dies: int,
                             density_scale: float = 1.0
                             ) -> tuple[int, np.ndarray]:
        """One wafer's random draws, in the canonical order.

        Gamma density mixing, Poisson count, rejection-sampled
        positions, then the defect-radius kill filter — exactly the
        draw order of :meth:`simulate_wafer`, so any path that feeds
        each wafer its own generator (sequential batch or spawned
        child stream) produces bitwise-identical wafers.
        ``density_scale`` is the lot-level hyper-distribution factor
        (1.0 for non-hierarchical lots — the multiply is skipped so
        legacy draws are untouched down to the last bit).  Returns
        ``(defects thrown, killer positions)``.
        """
        area = self.wafer.area_cm2
        radius = self.wafer.radius_cm
        density = self.defect_density_per_cm2
        if density_scale != 1.0:
            density = density * density_scale
        if self.clustering_alpha is not None and density > 0:
            density = density * rng.gamma(self.clustering_alpha,
                                          1.0 / self.clustering_alpha)
        n_defects = int(rng.poisson(density * area)) if density > 0 else 0

        pos = np.empty((0, 2))
        if n_defects > 0 and n_dies > 0:
            # Rejection-sample uniform positions in the circle.
            while pos.shape[0] < n_defects:
                cand = rng.uniform(-radius, radius,
                                   size=(2 * n_defects, 2))
                cand = cand[np.einsum("ij,ij->i", cand, cand)
                            <= radius * radius]
                pos = np.vstack([pos, cand])
            pos = pos[:n_defects]
            if self.size_distribution is not None:
                radii = self.size_distribution.sample(n_defects, rng)
                pos = pos[radii > self.kill_radius_um]
        return n_defects, pos

    def _grade_lot(self, killer_pos: list[np.ndarray],
                   centers: np.ndarray) -> np.ndarray:
        """Batched defect-vs-die grading for a lot (or a shard of one).

        Returns per-die killer counts of shape ``(len(killer_pos),
        len(centers))``.  Counts are exact integer accumulations, so
        the result does not depend on how the lot was batched or
        chunked.
        """
        n_dies = centers.shape[0]
        n_wafers = len(killer_pos)
        counts = np.zeros((n_wafers, n_dies), dtype=int)
        per_wafer = np.array([p.shape[0] for p in killer_pos],
                             dtype=np.int64)
        if per_wafer.sum() > 0:
            pos = np.concatenate(killer_pos, axis=0)
            wafer_ids = np.repeat(np.arange(n_wafers), per_wafer)
            half_w = self.die.width_cm / 2.0
            half_h = self.die.height_cm / 2.0
            # Bound the (defects, dies) boolean temporary to ~4M cells.
            chunk = max(1, (1 << 22) // max(n_dies, 1))
            for lo in range(0, pos.shape[0], chunk):
                hi = lo + chunk
                dx = np.abs(pos[lo:hi, 0:1] - centers[:, 0][None, :])
                dy = np.abs(pos[lo:hi, 1:2] - centers[:, 1][None, :])
                d_idx, die_idx = np.nonzero((dx <= half_w) & (dy <= half_h))
                np.add.at(counts, (wafer_ids[lo:hi][d_idx], die_idx), 1)
        return counts

    def simulate_lot(self, n_wafers: int,
                     rng: np.random.Generator | None = None, *,
                     seed: "int | np.random.SeedSequence | None" = None,
                     workers: int | None = None) -> "LotResult":
        """Simulate ``n_wafers`` independent wafers, grading the lot at once.

        Two seeding disciplines, selected by which argument is given
        (exactly one of ``rng``/``seed`` is required):

        ``rng``
            Legacy single-stream lot: random draws (the lot-level
            density factor when ``lot_alpha`` is set, then per wafer:
            gamma density mixing, Poisson count, rejection-sampled
            positions, defect radii) advance the one generator in the
            same per-wafer order as :meth:`simulate_wafer`, so a
            seeded lot is bitwise-reproducible regardless of batch
            size.  The expensive part — testing every killer defect
            against every die — is batched across the whole lot in one
            chunked pass.
        ``seed``
            Spawned per-wafer streams (``SeedSequence.spawn``), which
            makes the result bitwise independent of ``workers``:
            ``workers=k`` shards the lot over a process pool via
            :func:`repro.yieldsim.parallel.simulate_lot_sharded`,
            ``workers=1``/``None`` runs the identical schedule
            in-process, and a pool failure falls back to sequential
            with one warning.

        ``workers`` requires ``seed`` — a shared generator stream
        cannot be split across processes without changing results.
        Returns a :class:`~repro.yieldsim.parallel.LotResult`, an
        immutable sequence of :class:`WaferMap` with lot-level
        aggregates.
        """
        from .parallel import LotResult, simulate_lot_sharded

        if (rng is None) == (seed is None):
            raise ParameterError(
                "specify exactly one of rng (single-stream lot) or "
                "seed (spawned per-wafer streams)")
        if workers is not None and seed is None:
            raise ParameterError(
                "workers requires seed=...: sharding needs spawned "
                "per-wafer streams to stay independent of worker count")
        if seed is not None:
            return simulate_lot_sharded(self, n_wafers, seed,
                                        workers=workers)
        if n_wafers < 0:
            raise ParameterError(f"n_wafers must be >= 0, got {n_wafers}")
        centers = self._die_centers()
        n_dies = centers.shape[0]

        with _span("mc.simulate_lot", n_wafers=n_wafers, workers=1):
            density_scale = self._lot_density_scale(rng)
            n_thrown: list[int] = []
            killer_pos: list[np.ndarray] = []
            for i in range(n_wafers):
                with _span("mc.wafer", wafer=i):
                    thrown, pos = self._throw_wafer_defects(
                        rng, n_dies, density_scale)
                n_thrown.append(thrown)
                killer_pos.append(pos)
                _metrics.inc("mc.wafers_simulated")
                _metrics.inc("mc.defects_thrown", thrown)
            counts = self._grade_lot(killer_pos, centers)
        _metrics.inc("mc.lots_simulated")
        return LotResult(tuple(
            WaferMap(die_centers_cm=centers, defect_counts=counts[i],
                     n_defects_total=n_thrown[i])
            for i in range(n_wafers)))

    def simulate_lots(self, n_lots: int, n_wafers: int, *,
                      seed: "int | np.random.SeedSequence",
                      workers: int | None = None) -> "list[LotResult]":
        """Simulate ``n_lots`` independent lots of ``n_wafers`` wafers.

        Each lot gets its own child of the root ``SeedSequence`` (lot
        ``j`` always consumes child ``j``), so the multi-lot sample —
        like each lot individually — is bitwise independent of
        ``workers``.  With ``lot_alpha`` set, every lot draws its own
        density factor: this is the sampling counterpart of
        :class:`~repro.yieldsim.models.HierarchicalYieldModel` and the
        input shape :func:`repro.yieldsim.selection.fit_yield_models`
        consumes.
        """
        if n_lots < 0:
            raise ParameterError(f"n_lots must be >= 0, got {n_lots}")
        root = seed if isinstance(seed, np.random.SeedSequence) \
            else np.random.SeedSequence(seed)
        return [self.simulate_lot(n_wafers, seed=child, workers=workers)
                for child in (root.spawn(n_lots) if n_lots else [])]

    def estimate_yield(self, n_wafers: int,
                       rng: np.random.Generator | None = None, *,
                       seed: "int | np.random.SeedSequence | None" = None,
                       workers: int | None = None) -> float:
        """Pooled yield estimate over a simulated lot.

        Seeding/sharding arguments are forwarded to
        :meth:`simulate_lot` unchanged.
        """
        maps = self.simulate_lot(n_wafers, rng, seed=seed, workers=workers)
        good = sum(m.n_good for m in maps)
        total = sum(m.n_dies for m in maps)
        return good / total if total else 0.0

    def expected_killer_density(self) -> float:
        """Effective killer-defect density D_eff = D · P(R > kill radius)."""
        if self.size_distribution is None:
            return self.defect_density_per_cm2
        surv = float(self.size_distribution.survival(self.kill_radius_um))
        return self.defect_density_per_cm2 * surv
