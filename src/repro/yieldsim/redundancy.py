"""Memory redundancy / repair yield.

Scenario #1's assumption S1.2 is that the product is a DRAM "with
appropriately designed redundant components", and S1.3 (100% mature
yield) is only plausible *because* of repair: spare rows and columns
let a die tolerate a bounded number of spot defects.  Assumption S.1.2's
critique ("only memories enjoy the benefits of redundancy") is the hinge
between Scenario #1 and Scenario #2, so the repair model is a first-class
substrate here.

Model: the array is divided into ``n_blocks`` independently repairable
blocks; each block tolerates up to ``spares`` killer defects (a lumped
row+column spare budget — the standard simplification of row/column
repair when defects are sparse).  Defects per block are Poisson with
mean ``m_block``, so

.. math::

    Y_{block} = \\sum_{k=0}^{S} e^{-m} m^k / k! ,\\qquad
    Y_{array} = Y_{block}^{n_{blocks}}

Peripheral (non-repairable) area fails as plain Poisson.  Setting
``spares = 0`` collapses exactly to eq. (6), which the tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_nonnegative, require_positive


@dataclass(frozen=True)
class RedundantMemoryYield:
    """Yield of a memory die with spare-based repair.

    Parameters
    ----------
    array_area_cm2:
        Area of the repairable cell array.
    periphery_area_cm2:
        Area of non-repairable logic (decoders, sense amps, pads).
    n_blocks:
        Number of independently repairable blocks the array divides into.
    spares_per_block:
        Killer defects each block can absorb (lumped spare budget).
    area_overhead_fraction:
        Fraction of the *array* area added by the spare structures
        themselves (costs area ⇒ more defects land, and costs silicon in
        the cost model).  Typical DRAM overhead is 2–7%.
    """

    array_area_cm2: float
    periphery_area_cm2: float = 0.0
    n_blocks: int = 1
    spares_per_block: int = 0
    area_overhead_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive("array_area_cm2", self.array_area_cm2)
        require_nonnegative("periphery_area_cm2", self.periphery_area_cm2)
        require_fraction("area_overhead_fraction", self.area_overhead_fraction,
                         inclusive_high=False)
        if self.n_blocks < 1:
            raise ParameterError(f"n_blocks must be >= 1, got {self.n_blocks}")
        if self.spares_per_block < 0:
            raise ParameterError(
                f"spares_per_block must be >= 0, got {self.spares_per_block}")

    @property
    def effective_array_area_cm2(self) -> float:
        """Array area inflated by the spare-structure overhead."""
        return self.array_area_cm2 * (1.0 + self.area_overhead_fraction)

    @property
    def total_area_cm2(self) -> float:
        """Full die area: inflated array plus periphery."""
        return self.effective_array_area_cm2 + self.periphery_area_cm2

    def yield_for_density(self, defect_density_per_cm2: float) -> float:
        """Die yield at the given killer-defect density (defects/cm²)."""
        require_nonnegative("defect_density_per_cm2", defect_density_per_cm2)
        d = defect_density_per_cm2
        m_block = self.effective_array_area_cm2 * d / self.n_blocks
        y_block = _poisson_tolerant_yield(m_block, self.spares_per_block)
        y_array = y_block ** self.n_blocks
        y_periph = math.exp(-self.periphery_area_cm2 * d)
        return y_array * y_periph

    def unrepaired_yield(self, defect_density_per_cm2: float) -> float:
        """Plain eq.-(6) yield of the same silicon with repair disabled."""
        require_nonnegative("defect_density_per_cm2", defect_density_per_cm2)
        return math.exp(-self.total_area_cm2 * defect_density_per_cm2)

    def repair_gain(self, defect_density_per_cm2: float) -> float:
        """Yield multiplier delivered by repair: Y_repaired / Y_unrepaired.

        Always ≥ 1 whenever the same silicon is compared (the overhead
        area is charged to both sides); this invariant is property-tested.
        """
        base = self.unrepaired_yield(defect_density_per_cm2)
        return self.yield_for_density(defect_density_per_cm2) / base

    def spares_for_target_yield(self, defect_density_per_cm2: float,
                                target_yield: float, *,
                                max_spares: int = 10_000) -> int:
        """Smallest per-block spare budget achieving ``target_yield``.

        Raises :class:`ParameterError` if the target is unreachable even
        with ``max_spares`` (e.g. the periphery alone yields below the
        target — spares cannot fix unrepairable area).
        """
        require_fraction("target_yield", target_yield, inclusive_low=False,
                         inclusive_high=False)
        for spares in range(max_spares + 1):
            trial = RedundantMemoryYield(
                array_area_cm2=self.array_area_cm2,
                periphery_area_cm2=self.periphery_area_cm2,
                n_blocks=self.n_blocks,
                spares_per_block=spares,
                area_overhead_fraction=self.area_overhead_fraction)
            if trial.yield_for_density(defect_density_per_cm2) >= target_yield:
                return spares
        raise ParameterError(
            f"target yield {target_yield} unreachable with <= {max_spares} spares "
            f"(periphery yield caps at "
            f"{math.exp(-self.periphery_area_cm2 * defect_density_per_cm2):.4f})")


def _poisson_tolerant_yield(mean: float, tolerated: int) -> float:
    """P(Poisson(mean) <= tolerated), computed stably in log space."""
    if mean == 0.0:
        return 1.0
    log_term = -mean  # k = 0 term: exp(-m)
    total = math.exp(log_term)
    for k in range(1, tolerated + 1):
        log_term += math.log(mean) - math.log(k)
        total += math.exp(log_term)
    return min(total, 1.0)
