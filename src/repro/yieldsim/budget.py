"""Defect-density budgeting across process layers.

Fig. 4's lower curve says each generation *requires* a cleaner fab; a
process integrator has to turn that single number into per-layer
budgets: metal-1 defects are not poly defects, and cleaning each layer
has its own cost curve.  This module solves the classical allocation:

Given layers i with current killer densities ``d_i`` and cleaning cost
rates ``c_i`` (dollars per *decade* of density reduction — contamination
work scales with orders of magnitude, not absolute deltas), find new
densities minimizing total cleaning spend subject to a die-yield target
``exp(−A·Σd_i) ≥ Y_target``.

With logarithmic costs the Lagrangian gives a water-filling solution:
each layer is cleaned to ``d_i* = θ·c_i`` (density proportional to its
cost rate) for the θ that meets the budget Σd_i* = D_target, except
layers already below their allocation, which are left alone (cleaning
cannot be undone) — handled by the standard active-set iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_positive


@dataclass(frozen=True)
class LayerDefectivity:
    """One process layer's defect state and cleaning economics.

    ``cost_per_decade_dollars`` is the engineering spend to cut this
    layer's killer density by 10× (filters, tool cleans, procedures).
    """

    name: str
    density_per_cm2: float
    cost_per_decade_dollars: float

    def __post_init__(self) -> None:
        require_positive("density_per_cm2", self.density_per_cm2)
        require_positive("cost_per_decade_dollars",
                         self.cost_per_decade_dollars)


@dataclass(frozen=True)
class LayerAllocation:
    """The optimizer's verdict for one layer."""

    layer: LayerDefectivity
    target_density_per_cm2: float

    @property
    def decades_cleaned(self) -> float:
        """log10(current/target); 0 when the layer is left alone."""
        return math.log10(self.layer.density_per_cm2
                          / self.target_density_per_cm2)

    @property
    def cleaning_cost_dollars(self) -> float:
        """Spend for this layer under the per-decade cost model."""
        return self.layer.cost_per_decade_dollars * self.decades_cleaned


def total_density(layers: tuple[LayerDefectivity, ...]) -> float:
    """Sum of layer densities (the D₀ the die sees)."""
    if not layers:
        raise ParameterError("layers must be non-empty")
    return sum(l.density_per_cm2 for l in layers)


def required_total_density(die_area_cm2: float, target_yield: float) -> float:
    """Poisson inversion: the Σd budget for a die to hit the target."""
    require_positive("die_area_cm2", die_area_cm2)
    require_fraction("target_yield", target_yield, inclusive_low=False,
                     inclusive_high=False)
    return -math.log(target_yield) / die_area_cm2


def allocate_cleaning(layers: tuple[LayerDefectivity, ...],
                      density_budget_per_cm2: float,
                      ) -> list[LayerAllocation]:
    """Minimum-cost cleaning plan meeting a total-density budget.

    Water-filling with an active set: layers are assigned
    ``d_i* = θ·c_i``; any layer whose current density is already below
    its assignment is frozen at its current value and the remaining
    budget re-split among the rest.  Raises if the budget is
    non-positive or already satisfied trivially returns "clean nothing".
    """
    require_positive("density_budget_per_cm2", density_budget_per_cm2)
    if not layers:
        raise ParameterError("layers must be non-empty")
    current_total = total_density(layers)
    if current_total <= density_budget_per_cm2:
        return [LayerAllocation(layer=l,
                                target_density_per_cm2=l.density_per_cm2)
                for l in layers]

    active = list(layers)       # layers that will actually be cleaned
    frozen: list[LayerDefectivity] = []
    for _ in range(len(layers) + 1):
        frozen_sum = sum(l.density_per_cm2 for l in frozen)
        remaining_budget = density_budget_per_cm2 - frozen_sum
        if remaining_budget <= 0.0:
            raise ParameterError(
                "budget unreachable: frozen layers alone exceed it "
                "(cleaning cannot raise a layer's density)")
        cost_sum = sum(l.cost_per_decade_dollars for l in active)
        theta = remaining_budget / cost_sum
        # Layers already at or below their water level freeze.
        newly_frozen = [l for l in active
                        if l.density_per_cm2 <= theta
                        * l.cost_per_decade_dollars]
        if not newly_frozen:
            allocations = {l.name: theta * l.cost_per_decade_dollars
                           for l in active}
            allocations.update({l.name: l.density_per_cm2 for l in frozen})
            return [LayerAllocation(
                layer=l, target_density_per_cm2=allocations[l.name])
                for l in layers]
        frozen.extend(newly_frozen)
        active = [l for l in active if l not in newly_frozen]
        if not active:
            raise ParameterError(
                "budget unreachable with monotone cleaning")
    raise ParameterError("active-set iteration failed to converge")


def plan_for_yield(layers: tuple[LayerDefectivity, ...],
                   die_area_cm2: float, target_yield: float,
                   ) -> tuple[list[LayerAllocation], float]:
    """End-to-end: allocations plus total cleaning cost for a yield goal."""
    budget = required_total_density(die_area_cm2, target_yield)
    allocations = allocate_cleaning(layers, budget)
    return allocations, sum(a.cleaning_cost_dollars for a in allocations)
