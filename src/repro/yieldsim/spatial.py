"""Radial defect gradients: why bigger wafers are harder.

Sec. III.A.c: "larger wafers are more difficult to process (process
uniformity and stability issues)" — the canonical signature is a radial
defect/parametric gradient, with edge dies yielding worse than center
dies.  This module models the standard quadratic profile

.. math:: D(r) = D_{center} \\cdot (1 + g \\, (r/R_w)^2)

and provides: the mean density over the wafer, per-die expected fault
counts (integrating the profile over each die position), the
center-vs-edge yield split, and the effective penalty of growing the
wafer at a fixed edge-gradient severity — quantifying how much of the
wafer-size productivity gain the gradient claws back.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..geometry import Die, Wafer
from ..obs import metrics as _metrics, span as _span
from ..obs.capture import absorb, begin_capture, capture_flags, end_capture
from ..units import require_nonnegative, require_positive
from .models import PoissonYield, YieldModel
from .monte_carlo import SpotDefectSimulator, WaferMap
from .parallel import SeedLike, _run_pool, _shard_slices, spawn_wafer_seeds


@dataclass(frozen=True)
class RadialDefectProfile:
    """Quadratic radial killer-density profile.

    Parameters
    ----------
    center_density_per_cm2:
        D at the wafer center.
    edge_gradient:
        g: the fractional density increase at the wafer edge
        (g = 1 means edge dies see 2× the center density).
    """

    center_density_per_cm2: float
    edge_gradient: float = 0.5

    def __post_init__(self) -> None:
        require_positive("center_density_per_cm2",
                         self.center_density_per_cm2)
        require_nonnegative("edge_gradient", self.edge_gradient)

    def density_at(self, r_cm: float, wafer_radius_cm: float) -> float:
        """D(r) for a point at radius r on a wafer of the given radius."""
        require_nonnegative("r_cm", r_cm)
        require_positive("wafer_radius_cm", wafer_radius_cm)
        ratio = min(r_cm / wafer_radius_cm, 1.0)
        return self.center_density_per_cm2 \
            * (1.0 + self.edge_gradient * ratio * ratio)

    def mean_density(self, wafer_radius_cm: float) -> float:
        """Area-weighted mean of D(r) over the wafer.

        ∫₀^R D(r)·2πr dr / (πR²) = D_center · (1 + g/2).
        """
        require_positive("wafer_radius_cm", wafer_radius_cm)
        return self.center_density_per_cm2 * (1.0 + self.edge_gradient / 2.0)

    def die_fault_expectation(self, die: Die, center_x_cm: float,
                              center_y_cm: float,
                              wafer_radius_cm: float) -> float:
        """Mean fault count of a die centered at (x, y).

        Evaluates D at the die center times die area — first order in
        die-size/wafer-size, which is the regime of interest.
        """
        r = math.hypot(center_x_cm, center_y_cm)
        return die.area_cm2 * self.density_at(r, wafer_radius_cm)

    def wafer_yield(self, wafer: Wafer, die: Die, *,
                    yield_model: YieldModel | None = None) -> float:
        """Mean die yield over the phase-optimized die grid."""
        from ..geometry import best_grid_offset
        model = yield_model if yield_model is not None else PoissonYield()
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1e-9)
        centers = sim._die_centers()
        if centers.shape[0] == 0:
            raise ParameterError("die does not fit the wafer")
        ys = []
        for x, y in centers:
            m = self.die_fault_expectation(die, float(x), float(y),
                                           wafer.radius_cm)
            ys.append(model.yield_from_expectation(m))
        return float(np.mean(ys))

    def center_edge_split(self, wafer: Wafer, die: Die, *,
                          inner_fraction: float = 0.5) -> tuple[float, float]:
        """(mean center-zone yield, mean edge-zone yield).

        Dies whose centers lie inside ``inner_fraction · R`` count as
        center; the rest as edge.  The gap is the fab-floor 'donut'
        signature.
        """
        if not 0.0 < inner_fraction < 1.0:
            raise ParameterError("inner_fraction must be in (0, 1)")
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1e-9)
        centers = sim._die_centers()
        model = PoissonYield()
        center_ys, edge_ys = [], []
        threshold = inner_fraction * wafer.radius_cm
        for x, y in centers:
            m = self.die_fault_expectation(die, float(x), float(y),
                                           wafer.radius_cm)
            target = center_ys if math.hypot(x, y) <= threshold else edge_ys
            target.append(model.yield_from_expectation(m))
        if not center_ys or not edge_ys:
            raise ParameterError("zone split left a zone empty; adjust "
                                 "inner_fraction or die size")
        return float(np.mean(center_ys)), float(np.mean(edge_ys))


def wafer_size_penalty(profile: RadialDefectProfile, die: Die, *,
                       small_radius_cm: float = 7.5,
                       large_radius_cm: float = 10.0) -> float:
    """Fraction of the ideal good-die gain lost to the edge gradient.

    Growing the wafer multiplies *sites* by ~(R₂/R₁)²; with an edge
    gradient pinned to the rim, the big wafer's mean yield is lower, so
    good dies grow by less.  Returns ``1 − actual_gain/ideal_gain`` —
    the S.1.1 wafer-size caveat as a number in [0, 1).
    """
    small = Wafer(radius_cm=small_radius_cm)
    large = Wafer(radius_cm=large_radius_cm)
    sim_small = SpotDefectSimulator(small, die, defect_density_per_cm2=1e-9)
    sim_large = SpotDefectSimulator(large, die, defect_density_per_cm2=1e-9)
    n_small = sim_small._die_centers().shape[0]
    n_large = sim_large._die_centers().shape[0]
    if n_small == 0 or n_large == 0:
        raise ParameterError("die does not fit one of the wafers")
    y_small = profile.wafer_yield(small, die)
    y_large = profile.wafer_yield(large, die)
    ideal_gain = n_large / n_small
    actual_gain = (n_large * y_large) / (n_small * y_small)
    return 1.0 - actual_gain / ideal_gain


def _radial_wafer(profile: RadialDefectProfile, wafer: Wafer, die: Die,
                  centers: np.ndarray,
                  rng: np.random.Generator) -> tuple[np.ndarray, int]:
    # One wafer's draws in the canonical order: Poisson count at the
    # max (edge) density, per-defect rejection into the circle, then
    # thinning against D(r)/D(edge).  Any path that hands each wafer
    # its own generator — the legacy shared-stream loop or a spawned
    # child stream — replays this order exactly.
    max_density = profile.density_at(wafer.radius_cm, wafer.radius_cm)
    radius = wafer.radius_cm
    half_w, half_h = die.width_cm / 2.0, die.height_cm / 2.0
    n_defects = rng.poisson(max_density * wafer.area_cm2)
    counts = np.zeros(centers.shape[0], dtype=int)
    kept = 0
    for _k in range(n_defects):
        while True:
            x, y = rng.uniform(-radius, radius, size=2)
            if x * x + y * y <= radius * radius:
                break
        r = math.hypot(x, y)
        accept = profile.density_at(r, radius) / max_density
        if rng.random() > accept:
            continue
        kept += 1
        dx = np.abs(x - centers[:, 0])
        dy = np.abs(y - centers[:, 1])
        counts += ((dx <= half_w) & (dy <= half_h)).astype(int)
    return counts, kept


def _radial_centers(profile: RadialDefectProfile, wafer: Wafer,
                    die: Die) -> np.ndarray:
    max_density = profile.density_at(wafer.radius_cm, wafer.radius_cm)
    base = SpotDefectSimulator(wafer, die,
                               defect_density_per_cm2=max_density)
    return base._die_centers()


def _radial_shard(profile: RadialDefectProfile, wafer: Wafer, die: Die,
                  seeds: list, first_wafer: int = 0,
                  obs_capture: tuple[bool, bool] | None = None
                  ) -> tuple[list[np.ndarray], list[int], dict | None]:
    # One worker's unit of a sharded radial lot — the radial analog of
    # repro.yieldsim.parallel._simulate_shard, with the same capture
    # protocol (spans/metrics come back in the payload for the parent
    # to absorb).  Centers are recomputed in the worker and not shipped
    # back; the parent re-attaches its own copy.
    frame = begin_capture(obs_capture) if obs_capture else None
    try:
        t0 = time.perf_counter() if obs_capture else 0.0
        with _span("mc.shard", first_wafer=first_wafer,
                   n_wafers=len(seeds)):
            centers = _radial_centers(profile, wafer, die)
            counts_list: list[np.ndarray] = []
            kept_list: list[int] = []
            for i, ss in enumerate(seeds):
                with _span("mc.wafer", wafer=first_wafer + i):
                    rng = np.random.default_rng(ss)
                    counts, kept = _radial_wafer(profile, wafer, die,
                                                 centers, rng)
                counts_list.append(counts)
                kept_list.append(kept)
                _metrics.inc("mc.wafers_simulated")
                _metrics.inc("mc.defects_thrown", kept)
        if obs_capture:
            _metrics.observe("mc.worker.wall_seconds",
                             time.perf_counter() - t0)
    finally:
        payload = end_capture(frame) if frame else None
    return counts_list, kept_list, payload


def simulate_radial_lot(profile: RadialDefectProfile, wafer: Wafer, die: Die,
                        n_wafers: int,
                        rng: np.random.Generator | None = None, *,
                        seed: SeedLike | None = None,
                        workers: int | None = None) -> list[WaferMap]:
    """Monte Carlo lot under the radial profile.

    Defect positions are drawn by rejection against D(r)/D(edge)
    (thinning a homogeneous process at the max density); die grading as
    in :class:`SpotDefectSimulator`.

    Seeding follows :meth:`SpotDefectSimulator.simulate_lot`: pass
    exactly one of ``rng`` (legacy single-stream lot, one generator
    advanced wafer by wafer) or ``seed`` (per-wafer spawned streams).
    ``workers=k`` requires ``seed`` and shards the lot over a process
    pool with the same worker-count invariance and sequential-fallback
    behavior as the homogeneous simulator; the same ``mc.*``
    spans/metrics are emitted when observability is on.
    """
    if n_wafers < 0:
        raise ParameterError("n_wafers must be >= 0")
    if (rng is None) == (seed is None):
        raise ParameterError(
            "specify exactly one of rng (single-stream lot) or "
            "seed (spawned per-wafer streams)")
    if workers is not None and seed is None:
        raise ParameterError(
            "workers requires seed=...: sharding needs spawned "
            "per-wafer streams to stay independent of worker count")
    if workers is not None and workers < 1:
        raise ParameterError(f"workers must be >= 1, got {workers}")
    centers = _radial_centers(profile, wafer, die)

    if rng is not None:
        with _span("mc.simulate_lot", n_wafers=n_wafers, workers=1):
            parts = []
            for i in range(n_wafers):
                with _span("mc.wafer", wafer=i):
                    parts.append(_radial_wafer(profile, wafer, die,
                                               centers, rng))
                _metrics.inc("mc.wafers_simulated")
                _metrics.inc("mc.defects_thrown", parts[-1][1])
        _metrics.inc("mc.lots_simulated")
        return [WaferMap(die_centers_cm=centers, defect_counts=counts,
                         n_defects_total=kept)
                for counts, kept in parts]

    seeds = spawn_wafer_seeds(seed, n_wafers)
    n_workers = 1 if workers is None else min(workers, max(n_wafers, 1))
    flags = capture_flags()
    with _span("mc.simulate_lot", n_wafers=n_wafers, workers=n_workers):
        if n_workers <= 1:
            shards = [_radial_shard(profile, wafer, die, seeds, 0, flags)]
        else:
            slices = _shard_slices(n_wafers, n_workers)
            shards = _run_pool(
                _radial_shard,
                [(profile, wafer, die, seeds[s], s.start, flags)
                 for s in slices])
        for shard in shards:
            absorb(shard[2])
    _metrics.inc("mc.lots_simulated")
    counts_list = [c for shard in shards for c in shard[0]]
    kept_list = [k for shard in shards for k in shard[1]]
    return [WaferMap(die_centers_cm=centers, defect_counts=counts_list[i],
                     n_defects_total=kept_list[i])
            for i in range(n_wafers)]
