"""Radial defect gradients: why bigger wafers are harder.

Sec. III.A.c: "larger wafers are more difficult to process (process
uniformity and stability issues)" — the canonical signature is a radial
defect/parametric gradient, with edge dies yielding worse than center
dies.  This module models the standard quadratic profile

.. math:: D(r) = D_{center} \\cdot (1 + g \\, (r/R_w)^2)

and provides: the mean density over the wafer, per-die expected fault
counts (integrating the profile over each die position), the
center-vs-edge yield split, and the effective penalty of growing the
wafer at a fixed edge-gradient severity — quantifying how much of the
wafer-size productivity gain the gradient claws back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..geometry import Die, Wafer
from ..units import require_nonnegative, require_positive
from .models import PoissonYield, YieldModel
from .monte_carlo import SpotDefectSimulator, WaferMap


@dataclass(frozen=True)
class RadialDefectProfile:
    """Quadratic radial killer-density profile.

    Parameters
    ----------
    center_density_per_cm2:
        D at the wafer center.
    edge_gradient:
        g: the fractional density increase at the wafer edge
        (g = 1 means edge dies see 2× the center density).
    """

    center_density_per_cm2: float
    edge_gradient: float = 0.5

    def __post_init__(self) -> None:
        require_positive("center_density_per_cm2",
                         self.center_density_per_cm2)
        require_nonnegative("edge_gradient", self.edge_gradient)

    def density_at(self, r_cm: float, wafer_radius_cm: float) -> float:
        """D(r) for a point at radius r on a wafer of the given radius."""
        require_nonnegative("r_cm", r_cm)
        require_positive("wafer_radius_cm", wafer_radius_cm)
        ratio = min(r_cm / wafer_radius_cm, 1.0)
        return self.center_density_per_cm2 \
            * (1.0 + self.edge_gradient * ratio * ratio)

    def mean_density(self, wafer_radius_cm: float) -> float:
        """Area-weighted mean of D(r) over the wafer.

        ∫₀^R D(r)·2πr dr / (πR²) = D_center · (1 + g/2).
        """
        require_positive("wafer_radius_cm", wafer_radius_cm)
        return self.center_density_per_cm2 * (1.0 + self.edge_gradient / 2.0)

    def die_fault_expectation(self, die: Die, center_x_cm: float,
                              center_y_cm: float,
                              wafer_radius_cm: float) -> float:
        """Mean fault count of a die centered at (x, y).

        Evaluates D at the die center times die area — first order in
        die-size/wafer-size, which is the regime of interest.
        """
        r = math.hypot(center_x_cm, center_y_cm)
        return die.area_cm2 * self.density_at(r, wafer_radius_cm)

    def wafer_yield(self, wafer: Wafer, die: Die, *,
                    yield_model: YieldModel | None = None) -> float:
        """Mean die yield over the phase-optimized die grid."""
        from ..geometry import best_grid_offset
        model = yield_model if yield_model is not None else PoissonYield()
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1e-9)
        centers = sim._die_centers()
        if centers.shape[0] == 0:
            raise ParameterError("die does not fit the wafer")
        ys = []
        for x, y in centers:
            m = self.die_fault_expectation(die, float(x), float(y),
                                           wafer.radius_cm)
            ys.append(model.yield_from_expectation(m))
        return float(np.mean(ys))

    def center_edge_split(self, wafer: Wafer, die: Die, *,
                          inner_fraction: float = 0.5) -> tuple[float, float]:
        """(mean center-zone yield, mean edge-zone yield).

        Dies whose centers lie inside ``inner_fraction · R`` count as
        center; the rest as edge.  The gap is the fab-floor 'donut'
        signature.
        """
        if not 0.0 < inner_fraction < 1.0:
            raise ParameterError("inner_fraction must be in (0, 1)")
        sim = SpotDefectSimulator(wafer, die, defect_density_per_cm2=1e-9)
        centers = sim._die_centers()
        model = PoissonYield()
        center_ys, edge_ys = [], []
        threshold = inner_fraction * wafer.radius_cm
        for x, y in centers:
            m = self.die_fault_expectation(die, float(x), float(y),
                                           wafer.radius_cm)
            target = center_ys if math.hypot(x, y) <= threshold else edge_ys
            target.append(model.yield_from_expectation(m))
        if not center_ys or not edge_ys:
            raise ParameterError("zone split left a zone empty; adjust "
                                 "inner_fraction or die size")
        return float(np.mean(center_ys)), float(np.mean(edge_ys))


def wafer_size_penalty(profile: RadialDefectProfile, die: Die, *,
                       small_radius_cm: float = 7.5,
                       large_radius_cm: float = 10.0) -> float:
    """Fraction of the ideal good-die gain lost to the edge gradient.

    Growing the wafer multiplies *sites* by ~(R₂/R₁)²; with an edge
    gradient pinned to the rim, the big wafer's mean yield is lower, so
    good dies grow by less.  Returns ``1 − actual_gain/ideal_gain`` —
    the S.1.1 wafer-size caveat as a number in [0, 1).
    """
    small = Wafer(radius_cm=small_radius_cm)
    large = Wafer(radius_cm=large_radius_cm)
    sim_small = SpotDefectSimulator(small, die, defect_density_per_cm2=1e-9)
    sim_large = SpotDefectSimulator(large, die, defect_density_per_cm2=1e-9)
    n_small = sim_small._die_centers().shape[0]
    n_large = sim_large._die_centers().shape[0]
    if n_small == 0 or n_large == 0:
        raise ParameterError("die does not fit one of the wafers")
    y_small = profile.wafer_yield(small, die)
    y_large = profile.wafer_yield(large, die)
    ideal_gain = n_large / n_small
    actual_gain = (n_large * y_large) / (n_small * y_small)
    return 1.0 - actual_gain / ideal_gain


def simulate_radial_lot(profile: RadialDefectProfile, wafer: Wafer, die: Die,
                        n_wafers: int,
                        rng: np.random.Generator) -> list[WaferMap]:
    """Monte Carlo lot under the radial profile.

    Defect positions are drawn by rejection against D(r)/D(edge)
    (thinning a homogeneous process at the max density); die grading as
    in :class:`SpotDefectSimulator`.
    """
    if n_wafers < 0:
        raise ParameterError("n_wafers must be >= 0")
    max_density = profile.density_at(wafer.radius_cm, wafer.radius_cm)
    base = SpotDefectSimulator(wafer, die,
                               defect_density_per_cm2=max_density)
    centers = base._die_centers()
    out = []
    radius = wafer.radius_cm
    half_w, half_h = die.width_cm / 2.0, die.height_cm / 2.0
    for _ in range(n_wafers):
        n_defects = rng.poisson(max_density * wafer.area_cm2)
        counts = np.zeros(centers.shape[0], dtype=int)
        kept = 0
        for _k in range(n_defects):
            while True:
                x, y = rng.uniform(-radius, radius, size=2)
                if x * x + y * y <= radius * radius:
                    break
            r = math.hypot(x, y)
            accept = profile.density_at(r, radius) / max_density
            if rng.random() > accept:
                continue
            kept += 1
            dx = np.abs(x - centers[:, 0])
            dy = np.abs(y - centers[:, 1])
            counts += ((dx <= half_w) & (dy <= half_h)).astype(int)
        out.append(WaferMap(die_centers_cm=centers, defect_counts=counts,
                            n_defects_total=kept))
    return out
