"""Yield learning over time — Sec. VI's "rapid yield learning" economics.

The paper's scenarios freeze yield at maturity (100% or 70%); in
reality each technology generation starts dirty and *learns*: defect
density decays from an introduction value toward a mature floor.  How
fast it decays decides whether a product generation makes money —
which is why the paper lists "computer aids in rapid yield learning"
among the survival strategies of Phase 2.

Model: exponential defect-density learning

.. math:: D(t) = D_\\infty + (D_0 - D_\\infty)\\, e^{-t/\\tau}

composed with any :class:`~repro.yieldsim.models.YieldModel` to give
Y(t), plus the program-level economics: cumulative good dies over a
market window, the revenue value of cutting τ, and the break-even
learning time against a cost target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ConvergenceError, ParameterError
from ..units import require_fraction, require_nonnegative, require_positive
from .models import PoissonYield, YieldModel


@dataclass(frozen=True)
class YieldLearningCurve:
    """Exponential defect-density learning for one technology ramp.

    Parameters
    ----------
    initial_density_per_cm2:
        D₀ at process introduction (dirty).
    mature_density_per_cm2:
        D∞ floor after learning saturates.
    time_constant_months:
        τ of the exponential decay.
    yield_model:
        Map from fault expectation to yield (Poisson by default).
    """

    initial_density_per_cm2: float
    mature_density_per_cm2: float
    time_constant_months: float
    yield_model: YieldModel = PoissonYield()

    def __post_init__(self) -> None:
        require_positive("initial_density_per_cm2",
                         self.initial_density_per_cm2)
        require_nonnegative("mature_density_per_cm2",
                            self.mature_density_per_cm2)
        require_positive("time_constant_months", self.time_constant_months)
        if self.mature_density_per_cm2 > self.initial_density_per_cm2:
            raise ParameterError(
                "mature density cannot exceed the initial density")

    def density(self, months: float) -> float:
        """D(t) in defects/cm²."""
        require_nonnegative("months", months)
        d0, dinf = self.initial_density_per_cm2, self.mature_density_per_cm2
        return dinf + (d0 - dinf) * math.exp(-months / self.time_constant_months)

    def yield_at(self, months: float, die_area_cm2: float) -> float:
        """Y(t) for a die of the given area."""
        require_positive("die_area_cm2", die_area_cm2)
        return self.yield_model.yield_for_area(die_area_cm2,
                                               self.density(months))

    def months_to_density(self, target_density_per_cm2: float) -> float:
        """Time until D(t) reaches a target; ParameterError if below D∞."""
        require_nonnegative("target_density_per_cm2", target_density_per_cm2)
        d0, dinf = self.initial_density_per_cm2, self.mature_density_per_cm2
        if target_density_per_cm2 >= d0:
            return 0.0
        if target_density_per_cm2 <= dinf:
            raise ParameterError(
                f"target {target_density_per_cm2}/cm2 is at or below the "
                f"mature floor {dinf}/cm2; never reached")
        return -self.time_constant_months * math.log(
            (target_density_per_cm2 - dinf) / (d0 - dinf))

    def months_to_yield(self, target_yield: float, die_area_cm2: float) -> float:
        """Time until Y(t) reaches a target for the given die."""
        require_fraction("target_yield", target_yield, inclusive_low=False,
                         inclusive_high=False)
        require_positive("die_area_cm2", die_area_cm2)
        needed_density = self.yield_model.defect_density_for_yield(
            die_area_cm2, target_yield)
        mature_yield = self.yield_model.yield_for_area(
            die_area_cm2, self.mature_density_per_cm2)
        if mature_yield < target_yield:
            raise ConvergenceError(
                f"target yield {target_yield:.2f} exceeds the mature yield "
                f"{mature_yield:.2f}; unreachable on this curve")
        return self.months_to_density(needed_density)

    def accelerated(self, factor: float) -> "YieldLearningCurve":
        """A copy learning ``factor``× faster (τ divided by factor)."""
        require_positive("factor", factor)
        return replace(self,
                       time_constant_months=self.time_constant_months / factor)


@dataclass(frozen=True)
class RampEconomics:
    """Program economics of a yield ramp over a market window.

    Parameters
    ----------
    curve:
        The learning curve.
    die_area_cm2:
        Product die area.
    dies_per_wafer:
        Geometry (from :mod:`repro.geometry`).
    wafers_per_month:
        Production rate through the window.
    wafer_cost_dollars:
        Pure cost per wafer (eq. 3 or the bottom-up model).
    die_price_dollars:
        Selling price of a good die (held flat over the window for
        simplicity; compose with :mod:`repro.core.pricing` for decaying
        prices).
    window_months:
        Length of the market window.
    """

    curve: YieldLearningCurve
    die_area_cm2: float
    dies_per_wafer: int
    wafers_per_month: float
    wafer_cost_dollars: float
    die_price_dollars: float
    window_months: float = 24.0

    def __post_init__(self) -> None:
        require_positive("die_area_cm2", self.die_area_cm2)
        if self.dies_per_wafer < 1:
            raise ParameterError("dies_per_wafer must be >= 1")
        require_positive("wafers_per_month", self.wafers_per_month)
        require_positive("wafer_cost_dollars", self.wafer_cost_dollars)
        require_positive("die_price_dollars", self.die_price_dollars)
        require_positive("window_months", self.window_months)

    def good_dies_through(self, months: float, *, dt_months: float = 0.25) -> float:
        """Cumulative good dies from ramp start to ``months`` (midpoint
        rule on the yield curve)."""
        require_nonnegative("months", months)
        require_positive("dt_months", dt_months)
        total = 0.0
        t = 0.0
        while t < months:
            step = min(dt_months, months - t)
            y = self.curve.yield_at(t + step / 2.0, self.die_area_cm2)
            total += y * self.dies_per_wafer * self.wafers_per_month \
                * step
            t += step
        return total

    def program_profit(self) -> float:
        """Revenue minus wafer cost over the whole window, dollars."""
        good = self.good_dies_through(self.window_months)
        revenue = good * self.die_price_dollars
        cost = self.wafer_cost_dollars * self.wafers_per_month \
            * self.window_months
        return revenue - cost

    def value_of_faster_learning(self, factor: float) -> float:
        """Extra program profit from learning ``factor``× faster.

        The quantity that prices "computer aids in rapid yield
        learning": always ≥ 0 for factor ≥ 1 (property-tested).
        """
        require_positive("factor", factor)
        faster = replace(self, curve=self.curve.accelerated(factor))
        return faster.program_profit() - self.program_profit()

    def breakeven_month(self, *, dt_months: float = 0.25) -> float | None:
        """First month at which cumulative revenue covers cumulative cost,
        or None if the program never breaks even inside the window."""
        t = dt_months
        while t <= self.window_months + 1e-9:
            revenue = self.good_dies_through(t, dt_months=dt_months) \
                * self.die_price_dollars
            cost = self.wafer_cost_dollars * self.wafers_per_month * t
            if revenue >= cost:
                return t
            t += dt_months
        return None
