"""Maximum-likelihood yield-law selection on simulated lots.

The estimators in :mod:`repro.yieldsim.estimation` answer "what density
does this lot imply under a *given* law"; this module answers the
model-selection question one level up: **which yield law explains the
lot best?**  Every closed-form law in :mod:`repro.yieldsim.models` is
fit to the per-die killer-count data of one or more simulated lots by
exact maximum likelihood (each law's compound structure integrated in
closed form or on the same Gauss–Laguerre nodes the models themselves
use), and the fits are ranked by the Akaike and Bayesian information
criteria — the workflow behind ``python -m repro fit-yield`` and
``benchmarks/bench_yield_models.py``.

The likelihoods work on grouped sufficient statistics.  Conditional on
a wafer's density factor, per-die counts are independent Poisson, so a
wafer contributes only its total count ``K_w`` and die count ``n_w``
(plus a shared ``Σ ln k!`` constant); a lot contributes the joint
integral of its wafers over the lot-level factor.  That makes each
likelihood evaluation O(wafers · quadrature nodes), so full MLE over
millions of dies is instant.

All fitting is deterministic: closed forms where they exist (the
pooled-count MLE ``m̂ = K/N`` is exact for every equal-``n_w`` law) and
golden-section coordinate ascent on log-transformed shape parameters
otherwise — no stochastic optimizer, so a given lot always produces
the same report.  Observability: the whole fit runs under a
``yield.fit`` span with one ``yield.fit.<law>`` child per law, plus
``yield.fit.*`` metrics (see ``docs/observability.md``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ParameterError
from ..obs import metrics as _metrics, span as _span
from ..obs.state import enabled as _obs_enabled
from ..units import require_positive
from .models import (
    BoseEinsteinYield,
    CompoundPoissonGamma,
    HierarchicalYieldModel,
    MixtureYieldModel,
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    SeedsYield,
    YieldModel,
    _gamma_mixing_nodes,
)
from .parallel import LotResult

#: Laws fit by default, in presentation order.
DEFAULT_LAWS: tuple[str, ...] = (
    "poisson", "murphy", "seeds", "bose_einstein", "negative_binomial",
    "compound_poisson_gamma", "hierarchical", "mixture")

#: Search box for shape parameters (log-space golden section).
_SHAPE_LO, _SHAPE_HI = 0.05, 1000.0
#: Search box for the per-die expectation, as a factor of K/N.
_MU_SPAN = 16.0
#: Golden-section iterations per 1-D line search (~1e-9 bracket).
_GOLDEN_ITERS = 60
#: Coordinate-ascent sweeps for multi-parameter laws.
_ASCENT_SWEEPS = 4
#: Gauss–Legendre nodes for the Murphy (triangular-mixer) likelihood.
_MURPHY_NODES = 48


# ---------------------------------------------------------------------------
# sufficient statistics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _LotStats:
    # One lot's grouped data: per-wafer killer totals and die counts.
    wafer_counts: tuple[int, ...]
    wafer_dies: tuple[int, ...]


def _extract_stats(lots: Sequence[LotResult]
                   ) -> tuple[tuple[_LotStats, ...], float, int, int]:
    # Returns (per-lot stats, C = Σ ln k_d!, total dies, total defects).
    per_lot = []
    log_fact = 0.0
    n_dies = 0
    n_defects = 0
    for lot in lots:
        counts = []
        dies = []
        for wmap in lot:
            k = np.asarray(wmap.defect_counts)
            counts.append(int(k.sum()))
            dies.append(int(k.size))
            n_dies += int(k.size)
            n_defects += int(k.sum())
            if int(k.max(initial=0)) > 1:
                log_fact += float(sum(math.lgamma(int(v) + 1)
                                      for v in k[k > 1]))
        per_lot.append(_LotStats(tuple(counts), tuple(dies)))
    return tuple(per_lot), log_fact, n_dies, n_defects


# ---------------------------------------------------------------------------
# per-wafer log-likelihood kernels (without the shared Σ ln k! constant)
# ---------------------------------------------------------------------------

def _poisson_wafer_ll(mu: float, k: int, n: int) -> float:
    # ln Π Poisson(k_d | mu) over a wafer, grouped: K ln mu − n mu.
    if mu <= 0.0:
        return 0.0 if k == 0 else -math.inf
    return k * math.log(mu) - n * mu


def _gamma_wafer_ll(mu: float, beta: float, k: int, n: int) -> float:
    # ln ∫ Π Poisson(k_d | mu t) · Gamma(t; beta, 1/beta) dt — the
    # closed-form negative-binomial wafer contribution:
    # lnΓ(β+K) − lnΓ(β) + β ln β + K ln mu − (β+K) ln(β + n·mu).
    if mu <= 0.0:
        return 0.0 if k == 0 else -math.inf
    return (math.lgamma(beta + k) - math.lgamma(beta)
            + beta * math.log(beta) + k * math.log(mu)
            - (beta + k) * math.log(beta + n * mu))


def _logsumexp(values: list[float]) -> float:
    top = max(values)
    if top == -math.inf:
        return -math.inf
    return top + math.log(math.fsum(math.exp(v - top) for v in values))


def _triangular_nodes() -> tuple[tuple[float, ...], tuple[float, ...]]:
    # Murphy's mixer: symmetric triangular density on [0, 2] (mean 1),
    # discretized on Gauss–Legendre nodes mapped from [-1, 1].
    x, w = np.polynomial.legendre.leggauss(_MURPHY_NODES)
    s = [float(v) + 1.0 for v in x]
    dens = [(v if v <= 1.0 else 2.0 - v) for v in s]
    weights = [float(wi) * d for wi, d in zip(w, dens)]
    total = math.fsum(weights)
    return tuple(s), tuple(v / total for v in weights)


_TRI_CACHE: tuple[tuple[float, ...], tuple[float, ...]] | None = None


def _murphy_wafer_ll(mu: float, k: int, n: int) -> float:
    # ln ∫ Π Poisson(k_d | mu s) · triangular(s) ds by quadrature.
    global _TRI_CACHE
    if mu <= 0.0:
        return 0.0 if k == 0 else -math.inf
    if _TRI_CACHE is None:
        _TRI_CACHE = _triangular_nodes()
    nodes, weights = _TRI_CACHE
    terms = [math.log(w) + _poisson_wafer_ll(mu * s, k, n)
             for s, w in zip(nodes, weights)]
    return _logsumexp(terms)


def _total_ll(stats: tuple[_LotStats, ...],
              wafer_ll: Callable[[int, int], float]) -> float:
    # Independent-wafer laws: sum the per-wafer kernel over every lot.
    return math.fsum(wafer_ll(k, n)
                     for lot in stats
                     for k, n in zip(lot.wafer_counts, lot.wafer_dies))


def _hierarchical_ll(stats: tuple[_LotStats, ...], mu: float,
                     wafer_alpha: float, lot_alpha: float,
                     n_nodes: int) -> float:
    # Two-level law: wafers are NB(beta) conditional on the lot factor
    # t, and t integrates out on the lot's Gauss–Laguerre nodes:
    # ln Σ_i w_i Π_w NB-wafer(mu·t_i).
    if mu <= 0.0:
        return 0.0 if all(k == 0 for lot in stats
                          for k in lot.wafer_counts) else -math.inf
    nodes, weights = _gamma_mixing_nodes(float(lot_alpha), n_nodes)
    log_w = [math.log(w) for w in weights]
    total = 0.0
    for lot in stats:
        terms = [lw + math.fsum(
            _gamma_wafer_ll(mu * t, wafer_alpha, k, n)
            for k, n in zip(lot.wafer_counts, lot.wafer_dies))
            for t, lw in zip(nodes, log_w)]
        total += _logsumexp(terms)
    return total


def _mixture_ll(stats: tuple[_LotStats, ...], weight: float, mu: float,
                alpha: float) -> float:
    # Each wafer comes from the Poisson sub-population with probability
    # ``weight``, else from the gamma-mixed (NB) one.
    lp, lq = math.log(weight), math.log1p(-weight)
    total = 0.0
    for lot in stats:
        for k, n in zip(lot.wafer_counts, lot.wafer_dies):
            total += _logsumexp([lp + _poisson_wafer_ll(mu, k, n),
                                 lq + _gamma_wafer_ll(mu, alpha, k, n)])
    return total


# ---------------------------------------------------------------------------
# deterministic optimization
# ---------------------------------------------------------------------------

_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


def _golden_max(f: Callable[[float], float], lo: float, hi: float,
                iters: int = _GOLDEN_ITERS) -> float:
    # Golden-section maximizer on [lo, hi]; deterministic, no gradients.
    a, b = lo, hi
    c = b - _INV_PHI * (b - a)
    d = a + _INV_PHI * (b - a)
    fc, fd = f(c), f(d)
    for _ in range(iters):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - _INV_PHI * (b - a)
            fc = f(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INV_PHI * (b - a)
            fd = f(d)
    return 0.5 * (a + b)


def _ascend(objective: Callable[[list[float]], float],
            start: list[float],
            bounds: list[tuple[float, float]]) -> list[float]:
    # Cyclic coordinate ascent with golden-section line searches.
    point = list(start)
    for _ in range(_ASCENT_SWEEPS):
        for i, (lo, hi) in enumerate(bounds):
            def line(v: float, i: int = i) -> float:
                trial = list(point)
                trial[i] = v
                return objective(trial)
            point[i] = _golden_max(line, lo, hi)
    return point


# ---------------------------------------------------------------------------
# fit results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FittedYieldLaw:
    """One law's maximum-likelihood fit to the lot data.

    ``params`` holds the fitted quantities by name (always
    ``defect_density_per_cm2``; shape parameters per law); ``model`` is
    the fitted :class:`~repro.yieldsim.models.YieldModel` instance,
    ready for :func:`repro.batch.engine.yield_for_area_batch` or a
    :mod:`repro.serve` query.
    """

    name: str
    model: YieldModel
    params: dict
    n_params: int
    log_likelihood: float
    aic: float
    bic: float

    def to_dict(self) -> dict:
        """JSON-ready summary of this fit."""
        return {
            "name": self.name,
            "params": {k: float(v) for k, v in self.params.items()},
            "n_params": self.n_params,
            "log_likelihood": self.log_likelihood,
            "aic": self.aic,
            "bic": self.bic,
        }


@dataclass(frozen=True)
class ModelSelectionReport:
    """All fitted laws, ranked by AIC (ascending — best first).

    Ties break toward fewer parameters, then law name, so the ranking
    is deterministic (the NB and compound-Poisson-gamma laws are
    algebraically identical and always tie).
    """

    laws: tuple[FittedYieldLaw, ...]
    n_lots: int
    n_wafers: int
    n_dies: int
    n_defects: int
    die_area_cm2: float

    @property
    def best(self) -> FittedYieldLaw:
        """The top-ranked (lowest-AIC) law."""
        return self.laws[0]

    def law(self, name: str) -> FittedYieldLaw:
        """The fit for ``name`` (:class:`KeyError` if absent)."""
        for fit in self.laws:
            if fit.name == name:
                return fit
        raise KeyError(name)

    def rank_of(self, name: str) -> int:
        """1-based AIC rank of ``name`` (:class:`KeyError` if absent)."""
        for i, fit in enumerate(self.laws):
            if fit.name == name:
                return i + 1
        raise KeyError(name)

    def to_dict(self) -> dict:
        """JSON-ready report (the ``BENCH_yield.json`` fit table)."""
        return {
            "n_lots": self.n_lots,
            "n_wafers": self.n_wafers,
            "n_dies": self.n_dies,
            "n_defects": self.n_defects,
            "die_area_cm2": self.die_area_cm2,
            "ranking": [fit.to_dict() for fit in self.laws],
        }

    def table_rows(self) -> list[tuple]:
        """(rank, law, k, logL, AIC, BIC, ΔAIC) rows for display."""
        best_aic = self.best.aic
        return [(i + 1, fit.name, fit.n_params, fit.log_likelihood,
                 fit.aic, fit.bic, fit.aic - best_aic)
                for i, fit in enumerate(self.laws)]


# ---------------------------------------------------------------------------
# the fitting harness
# ---------------------------------------------------------------------------

def fit_yield_models(lots: LotResult | Sequence[LotResult],
                     die_area_cm2: float, *,
                     laws: Sequence[str] | None = None,
                     bose_einstein_layers: int = 4,
                     quadrature_nodes: int = 24) -> ModelSelectionReport:
    """Fit every requested yield law to simulated lots; rank by AIC/BIC.

    ``lots`` is one :class:`~repro.yieldsim.parallel.LotResult` or a
    sequence of them (one entry per lot — the grouping the
    hierarchical law needs; :meth:`SpotDefectSimulator.simulate_lots
    <repro.yieldsim.monte_carlo.SpotDefectSimulator.simulate_lots>`
    produces exactly this shape).  ``die_area_cm2`` converts the fitted
    per-die expectation into a defect density.

    Laws (``laws`` defaults to all of :data:`DEFAULT_LAWS`): Poisson,
    Murphy, Seeds, Bose–Einstein (``bose_einstein_layers`` fixed),
    negative binomial, compound Poisson–gamma, two-level hierarchical
    (``quadrature_nodes`` lot-factor nodes), and a Poisson/NB wafer
    mixture.  Information criteria: ``AIC = 2k − 2 ln L`` and
    ``BIC = k ln N − 2 ln L`` with ``N`` the total die count.
    """
    require_positive("die_area_cm2", die_area_cm2)
    if isinstance(lots, LotResult):
        lots = [lots]
    lots = list(lots)
    if not lots or any(not isinstance(lot, LotResult) for lot in lots):
        raise ParameterError(
            "lots must be a LotResult or a non-empty sequence of them")
    chosen = tuple(laws) if laws is not None else DEFAULT_LAWS
    unknown = [name for name in chosen if name not in _LAW_FITTERS]
    if unknown or not chosen:
        raise ParameterError(
            f"unknown yield laws {unknown!r}; available: "
            f"{sorted(_LAW_FITTERS)}")

    stats, log_fact, n_dies, n_defects = _extract_stats(lots)
    if n_dies == 0:
        raise ParameterError("lots contain no dies; nothing to fit")
    if n_defects == 0:
        raise ParameterError(
            "lots contain no killer defects; every law degenerates to "
            "Y=1 and the fit is meaningless")
    n_wafers = sum(len(lot.wafer_counts) for lot in stats)

    obs_on = _obs_enabled()
    t0 = time.perf_counter() if obs_on else 0.0
    fits = []
    with _span("yield.fit", lots=len(stats), wafers=n_wafers,
               dies=n_dies, defects=n_defects):
        context = _FitContext(stats=stats, log_fact=log_fact,
                              n_dies=n_dies, n_defects=n_defects,
                              die_area_cm2=float(die_area_cm2),
                              be_layers=int(bose_einstein_layers),
                              n_nodes=int(quadrature_nodes))
        for name in chosen:
            with _span(f"yield.fit.{name}"):
                fits.append(_LAW_FITTERS[name](context))
    ranked = tuple(sorted(
        fits, key=lambda f: (f.aic, f.n_params, f.name)))
    if obs_on:
        _metrics.inc("yield.fit.calls")
        _metrics.inc("yield.fit.laws", len(ranked))
        _metrics.observe("yield.fit.seconds", time.perf_counter() - t0)
    return ModelSelectionReport(
        laws=ranked, n_lots=len(stats), n_wafers=n_wafers,
        n_dies=n_dies, n_defects=n_defects,
        die_area_cm2=float(die_area_cm2))


@dataclass(frozen=True)
class _FitContext:
    # Everything a law fitter needs, precomputed once.
    stats: tuple[_LotStats, ...]
    log_fact: float
    n_dies: int
    n_defects: int
    die_area_cm2: float
    be_layers: int
    n_nodes: int

    @property
    def mu_hat(self) -> float:
        # Pooled-count estimate of the per-die expectation — the exact
        # MLE for every equal-die-count law, and the line-search center
        # for the rest.
        return self.n_defects / self.n_dies

    def mu_bounds(self) -> tuple[float, float]:
        return (math.log(self.mu_hat / _MU_SPAN),
                math.log(self.mu_hat * _MU_SPAN))

    def finish(self, name: str, model: YieldModel, params: dict,
               n_params: int, ll_without_const: float) -> FittedYieldLaw:
        ll = ll_without_const - self.log_fact
        aic = 2.0 * n_params - 2.0 * ll
        bic = n_params * math.log(self.n_dies) - 2.0 * ll
        params = {"defect_density_per_cm2":
                  params.pop("mu") / self.die_area_cm2, **params}
        return FittedYieldLaw(name=name, model=model, params=params,
                              n_params=n_params, log_likelihood=ll,
                              aic=aic, bic=bic)


def _fit_poisson(ctx: _FitContext) -> FittedYieldLaw:
    mu = ctx.mu_hat  # exact closed-form MLE
    ll = _total_ll(ctx.stats, lambda k, n: _poisson_wafer_ll(mu, k, n))
    return ctx.finish("poisson", PoissonYield(), {"mu": mu}, 1, ll)


def _fit_murphy(ctx: _FitContext) -> FittedYieldLaw:
    lo, hi = ctx.mu_bounds()

    def objective(p: list[float]) -> float:
        mu = math.exp(p[0])
        return _total_ll(ctx.stats,
                         lambda k, n: _murphy_wafer_ll(mu, k, n))
    best = _ascend(objective, [math.log(ctx.mu_hat)], [(lo, hi)])
    mu = math.exp(best[0])
    return ctx.finish("murphy", MurphyYield(), {"mu": mu}, 1,
                      objective(best))


def _fit_fixed_gamma(ctx: _FitContext, name: str, beta: float,
                     model: YieldModel) -> FittedYieldLaw:
    lo, hi = ctx.mu_bounds()

    def objective(p: list[float]) -> float:
        mu = math.exp(p[0])
        return _total_ll(ctx.stats,
                         lambda k, n: _gamma_wafer_ll(mu, beta, k, n))
    best = _ascend(objective, [math.log(ctx.mu_hat)], [(lo, hi)])
    mu = math.exp(best[0])
    return ctx.finish(name, model, {"mu": mu}, 1, objective(best))


def _fit_seeds(ctx: _FitContext) -> FittedYieldLaw:
    return _fit_fixed_gamma(ctx, "seeds", 1.0, SeedsYield())


def _fit_bose_einstein(ctx: _FitContext) -> FittedYieldLaw:
    return _fit_fixed_gamma(
        ctx, "bose_einstein", float(ctx.be_layers),
        BoseEinsteinYield(n_layers=ctx.be_layers))


def _fit_gamma_free(ctx: _FitContext) -> tuple[float, float, float]:
    # Shared (mu, alpha) MLE for the NB/CPG pair.
    lo, hi = ctx.mu_bounds()
    s_lo, s_hi = math.log(_SHAPE_LO), math.log(_SHAPE_HI)

    def objective(p: list[float]) -> float:
        mu, alpha = math.exp(p[0]), math.exp(p[1])
        return _total_ll(ctx.stats,
                         lambda k, n: _gamma_wafer_ll(mu, alpha, k, n))
    best = _ascend(objective, [math.log(ctx.mu_hat), 0.0],
                   [(lo, hi), (s_lo, s_hi)])
    return math.exp(best[0]), math.exp(best[1]), objective(best)


def _fit_negative_binomial(ctx: _FitContext) -> FittedYieldLaw:
    mu, alpha, ll = _fit_gamma_free(ctx)
    return ctx.finish("negative_binomial",
                      NegativeBinomialYield(alpha=alpha),
                      {"mu": mu, "alpha": alpha}, 2, ll)


def _fit_compound_poisson_gamma(ctx: _FitContext) -> FittedYieldLaw:
    mu, alpha, ll = _fit_gamma_free(ctx)
    return ctx.finish("compound_poisson_gamma",
                      CompoundPoissonGamma(alpha=alpha),
                      {"mu": mu, "alpha": alpha}, 2, ll)


def _fit_hierarchical(ctx: _FitContext) -> FittedYieldLaw:
    lo, hi = ctx.mu_bounds()
    s_lo, s_hi = math.log(_SHAPE_LO), math.log(_SHAPE_HI)

    def objective(p: list[float]) -> float:
        mu, beta, lot_alpha = (math.exp(p[0]), math.exp(p[1]),
                               math.exp(p[2]))
        return _hierarchical_ll(ctx.stats, mu, beta, lot_alpha,
                                ctx.n_nodes)
    best = _ascend(objective, [math.log(ctx.mu_hat), 0.0, 0.0],
                   [(lo, hi), (s_lo, s_hi), (s_lo, s_hi)])
    mu, beta, lot_alpha = (math.exp(best[0]), math.exp(best[1]),
                           math.exp(best[2]))
    model = HierarchicalYieldModel(lot_alpha=lot_alpha, wafer_alpha=beta,
                                   n_nodes=ctx.n_nodes)
    return ctx.finish("hierarchical", model,
                      {"mu": mu, "wafer_alpha": beta,
                       "lot_alpha": lot_alpha}, 3, objective(best))


def _fit_mixture(ctx: _FitContext) -> FittedYieldLaw:
    lo, hi = ctx.mu_bounds()
    s_lo, s_hi = math.log(_SHAPE_LO), math.log(_SHAPE_HI)

    def objective(p: list[float]) -> float:
        return _mixture_ll(ctx.stats, p[0], math.exp(p[1]),
                           math.exp(p[2]))
    best = _ascend(objective, [0.5, math.log(ctx.mu_hat), 0.0],
                   [(0.02, 0.98), (lo, hi), (s_lo, s_hi)])
    weight, mu, alpha = best[0], math.exp(best[1]), math.exp(best[2])
    model = MixtureYieldModel(
        ((weight, PoissonYield()),
         (1.0 - weight, CompoundPoissonGamma(alpha=alpha))))
    return ctx.finish("mixture", model,
                      {"mu": mu, "poisson_weight": weight,
                       "alpha": alpha}, 3, objective(best))


_LAW_FITTERS: dict[str, Callable[[_FitContext], FittedYieldLaw]] = {
    "poisson": _fit_poisson,
    "murphy": _fit_murphy,
    "seeds": _fit_seeds,
    "bose_einstein": _fit_bose_einstein,
    "negative_binomial": _fit_negative_binomial,
    "compound_poisson_gamma": _fit_compound_poisson_gamma,
    "hierarchical": _fit_hierarchical,
    "mixture": _fit_mixture,
}
