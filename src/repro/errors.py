"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library errors without also
swallowing programming mistakes (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model parameter is outside its physically meaningful domain.

    Examples: a negative feature size, a yield outside ``(0, 1]``,
    a die larger than its wafer.
    """


class GeometryError(ReproError, ValueError):
    """A geometric specification is inconsistent (e.g. die exceeds wafer)."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative routine (optimizer, solver) failed to converge."""


class CapacityError(ReproError, ValueError):
    """A manufacturing schedule demands more capacity than a fab provides."""


class ServiceError(ReproError, RuntimeError):
    """Base class for :mod:`repro.serve` request-service failures."""


class BackpressureError(ServiceError):
    """The service's bounded request queue is full.

    Raised by non-blocking submits immediately, and by blocking submits
    whose wait for queue space exceeded the caller's timeout.  This is
    the service's explicit backpressure signal: the caller should slow
    down, retry later, or raise the queue bound.

    Instances carry two diagnostic attributes set by the scheduler:
    ``queue_depth`` (how many requests were pending when the submit
    gave up) and ``tickets`` (the tickets a partial bulk submit did
    manage to enqueue — still live, still collectable).
    """

    #: Pending requests at the moment the submit gave up.
    queue_depth: int = 0

    #: Tickets a partial bulk submission already enqueued.
    tickets: list = []


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has been closed."""
