"""Technology roadmap trends: Figs. 1, 3 and 4 of the paper.

The paper anchors its cost analysis on four empirical trends:

* **Fig. 1** — minimum feature size vs. year: exponential shrink,
  roughly 0.7× per ~3-year generation through the early 1990s.
* **Fig. 3** — die size vs. feature size: the paper extracts
  ``A_ch(λ) = 16.5 · exp(−5.3 λ)`` cm² for leading-edge parts (die size
  *grows* as feature size shrinks), which drives eq. (9).
* **Fig. 4** — process step count grows and the *required* defect
  density falls with each generation.

Exact historical series for Figs. 1/2/4 were published as conference
slides and are not tabulated in the text; we reconstruct them from the
paper's quoted anchor points and the industry record it cites (SIA
roadmap 1993-era numbers), and mark every reconstructed constant below.
The *shapes* — exponential shrink, exponential fab-cost growth, step
count roughly linear per generation, required density as a power of λ —
are what the benches assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_positive
from ..yieldsim.models import YieldModel, PoissonYield

#: The canonical technology generations of the paper's era, in microns.
#: Each step is close to the 0.7× linear shrink the industry planned by.
GENERATIONS_UM: tuple[float, ...] = (3.0, 2.0, 1.5, 1.0, 0.8, 0.65, 0.5, 0.35, 0.25)

#: Fig.-3 fit published in the paper (Sec. IV.A): A_ch in cm², λ in µm.
DIE_AREA_COEFF_CM2 = 16.5
DIE_AREA_EXPONENT_PER_UM = 5.3


def die_area_trend_cm2(feature_size_um: float) -> float:
    """Fig. 3's fitted leading-edge die area: ``A_ch(λ) = 16.5·exp(−5.3 λ)``.

    This is the paper's own extraction; it appears verbatim in eq. (9).
    """
    require_positive("feature_size_um", feature_size_um)
    return DIE_AREA_COEFF_CM2 * math.exp(-DIE_AREA_EXPONENT_PER_UM * feature_size_um)


@dataclass(frozen=True)
class TechnologyRoadmap:
    """Parametric reconstruction of the Fig.-1/2/4 trend curves.

    Parameters
    ----------
    reference_year:
        Year at which the feature size equals ``reference_feature_um``.
        Default anchors 1.0 µm at 1989, consistent with Fig. 1's era
        (1 µm CMOS was the 1989–90 leading edge the paper's wafer-cost
        anchors refer to).
    reference_feature_um:
        Feature size at the reference year.
    shrink_per_generation:
        Linear shrink factor per generation (canonical 0.7).
    years_per_generation:
        Cadence of generations (canonical 3 years in this era).
    steps_at_reference, steps_per_generation:
        Fig.-4 upper curve: mask/process step count, modeled as linear
        in generation index (≈250 steps at 1 µm growing by ≈50 per
        generation — reconstructed from the 1993 SIA roadmap numbers
        the paper cites).
    """

    reference_year: float = 1989.0
    reference_feature_um: float = 1.0
    shrink_per_generation: float = 0.7
    years_per_generation: float = 3.0
    steps_at_reference: float = 250.0
    steps_per_generation: float = 50.0

    def __post_init__(self) -> None:
        require_positive("reference_feature_um", self.reference_feature_um)
        require_positive("years_per_generation", self.years_per_generation)
        require_positive("steps_at_reference", self.steps_at_reference)
        if not 0.0 < self.shrink_per_generation < 1.0:
            raise ParameterError(
                f"shrink_per_generation must be in (0, 1), got "
                f"{self.shrink_per_generation}")

    def generation_index(self, feature_size_um: float) -> float:
        """Generations elapsed from the reference feature size (may be
        negative for feature sizes coarser than the reference).

        This is exactly the exponent ``g(λ)`` used by the default
        wafer-cost law (DESIGN.md deviation 1).
        """
        require_positive("feature_size_um", feature_size_um)
        return math.log(self.reference_feature_um / feature_size_um) \
            / math.log(1.0 / self.shrink_per_generation)

    def feature_size_um(self, year: float) -> float:
        """Fig. 1: minimum feature size in microns at the given year."""
        generations = (year - self.reference_year) / self.years_per_generation
        return self.reference_feature_um * self.shrink_per_generation ** generations

    def year_of_feature_size(self, feature_size_um: float) -> float:
        """Inverse of :meth:`feature_size_um`."""
        return self.reference_year \
            + self.generation_index(feature_size_um) * self.years_per_generation

    def process_steps(self, feature_size_um: float) -> float:
        """Fig. 4 (upper curve): manufacturing step count at a feature size."""
        g = self.generation_index(feature_size_um)
        steps = self.steps_at_reference + self.steps_per_generation * g
        if steps <= 0:
            raise ParameterError(
                f"step model degenerates at {feature_size_um} um (steps={steps:.1f})")
        return steps

    def required_defect_density(self, feature_size_um: float, *,
                                target_yield: float = 0.8,
                                design_density: float = 30.0,
                                n_transistors: float | None = None,
                                p: float = 4.07,
                                yield_model: YieldModel | None = None) -> float:
        """Fig. 4 (lower curve): defect density D₀ *required* at a node.

        Computes the density at which a leading-edge die of that node
        (transistor count from the Fig.-3 area trend and eq. (5) unless
        given) reaches ``target_yield`` under ``yield_model`` (Poisson
        by default), then expresses it as the λ-independent coefficient
        ``D = D₀ · λ^p`` of eq. (7) *divided back* to physical defects
        per cm² at the node's kill radius — i.e. the plain D₀ such that
        ``exp(−A·D₀) = target``.  Falls steeply with λ because the die
        grows while the kill radius shrinks.
        """
        require_positive("feature_size_um", feature_size_um)
        model = yield_model if yield_model is not None else PoissonYield()
        if n_transistors is None:
            area = die_area_trend_cm2(feature_size_um)
        else:
            area = n_transistors * design_density * feature_size_um ** 2 / 1.0e8
        d0 = model.defect_density_for_yield(area, target_yield)
        # Express at the node's sensitivity: smaller lambda means smaller
        # defects kill, so the *physical* density must fall by lambda^p
        # relative to the reference node for the same D0 to hold.
        scale = (feature_size_um / self.reference_feature_um) ** (p - 2.0)
        return d0 * scale

    def series(self, feature_sizes_um: tuple[float, ...] = GENERATIONS_UM):
        """Convenience: (λ, year, steps, required density) rows for benches."""
        rows = []
        for lam in feature_sizes_um:
            rows.append({
                "feature_size_um": lam,
                "year": self.year_of_feature_size(lam),
                "process_steps": self.process_steps(lam),
                "required_defect_density_per_cm2":
                    self.required_defect_density(lam),
            })
        return rows
