"""Product catalog: the 17 product-manufacturing scenarios of Table 3.

Table 3 is the paper's "cost diversity" exhibit: the same cost model,
fed with per-product parameters (transistor count, feature size, design
density, wafer radius, reference yield, reference wafer cost, cost
growth rate X), spans 0.93 to 240 micro-dollars per transistor.  This
module carries those 17 rows as typed :class:`ProductSpec` records plus
the published C_tr values they should reproduce.

Two rows lost their transistor counts to OCR in the supplied text
(rows 4 and 16); they are reconstructed from Table 2 identities (see
DESIGN.md, deviation 4) and flagged via ``reconstructed=True``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_fraction, require_positive


class ProductClass(enum.Enum):
    """Coarse product categories used throughout the paper's narrative."""

    DRAM = "DRAM"
    SRAM = "SRAM"
    MICROPROCESSOR = "uP"
    GATE_ARRAY = "gate array"
    SEA_OF_GATES = "SOG"
    PLD = "PLD"
    SIGNAL_PROCESSOR = "VSP"

    @property
    def has_redundancy(self) -> bool:
        """Only memories 'enjoy the benefits of redundancy' (Sec. IV.A)."""
        return self in (ProductClass.DRAM, ProductClass.SRAM)


@dataclass(frozen=True)
class ProductSpec:
    """One row of Table 3: a product-manufacturing scenario.

    Fields mirror the table's first eight columns; ``published_ctr_microdollars``
    is the ninth (the value our model must approximate) and
    ``reconstructed`` flags rows whose N_tr was recovered from Table 2
    rather than read from the text.
    """

    name: str
    product_class: ProductClass
    n_transistors: float
    feature_size_um: float
    design_density: float
    wafer_radius_cm: float
    reference_yield: float
    reference_wafer_cost_dollars: float
    cost_growth_rate: float
    published_ctr_microdollars: float | None = None
    reconstructed: bool = False

    def __post_init__(self) -> None:
        require_positive("n_transistors", self.n_transistors)
        require_positive("feature_size_um", self.feature_size_um)
        require_positive("design_density", self.design_density)
        require_positive("wafer_radius_cm", self.wafer_radius_cm)
        require_fraction("reference_yield", self.reference_yield,
                         inclusive_low=False)
        require_positive("reference_wafer_cost_dollars",
                         self.reference_wafer_cost_dollars)
        if self.cost_growth_rate < 1.0:
            raise ParameterError(
                f"cost_growth_rate X must be >= 1, got {self.cost_growth_rate}")

    @property
    def die_area_cm2(self) -> float:
        """Eq. (5) inverted: die area implied by count, density and λ."""
        area_um2 = self.n_transistors * self.design_density \
            * self.feature_size_um ** 2
        return area_um2 / 1.0e8


def _row(name: str, cls: ProductClass, n_tr: float, lam: float, d_d: float,
         r_w: float, y0: float, c0: float, x: float, ctr: float,
         reconstructed: bool = False) -> ProductSpec:
    return ProductSpec(
        name=name, product_class=cls, n_transistors=n_tr, feature_size_um=lam,
        design_density=d_d, wafer_radius_cm=r_w, reference_yield=y0,
        reference_wafer_cost_dollars=c0, cost_growth_rate=x,
        published_ctr_microdollars=ctr, reconstructed=reconstructed)


#: Table 3, rows 1–17.  Row 4's N_tr (lost to OCR) is reconstructed as
#: 2.5M (a 0.8 µm CMOS µP at d_d = 190 between the 3.1M BiCMOS rows and
#: the 0.85M row); row 16's as 354k (SOG, 177k gates × ~4 tr/gate × 50%
#: utilization, matching its Table-2 identity).
PRODUCT_CATALOG: tuple[ProductSpec, ...] = (
    _row("BiCMOS uP (optimistic)", ProductClass.MICROPROCESSOR,
         3.1e6, 0.8, 150.0, 7.5, 0.9, 700.0, 1.4, 9.40),
    _row("BiCMOS uP (nominal)", ProductClass.MICROPROCESSOR,
         3.1e6, 0.8, 150.0, 7.5, 0.7, 700.0, 1.8, 25.50),
    _row("BiCMOS uP (pessimistic)", ProductClass.MICROPROCESSOR,
         3.1e6, 0.8, 150.0, 7.5, 0.6, 700.0, 2.2, 49.30),
    _row("CMOS uP (d_d 190)", ProductClass.MICROPROCESSOR,
         2.5e6, 0.8, 190.0, 7.5, 0.7, 700.0, 1.8, 21.80, reconstructed=True),
    _row("CMOS uP (0.85M)", ProductClass.MICROPROCESSOR,
         0.85e6, 0.8, 370.0, 7.5, 0.7, 900.0, 1.8, 53.50),
    _row("BiCMOS uP (repeat of row 2)", ProductClass.MICROPROCESSOR,
         3.1e6, 0.8, 150.0, 7.5, 0.7, 700.0, 1.8, 25.50),
    _row("CMOS uP (PowerPC-class)", ProductClass.MICROPROCESSOR,
         2.8e6, 0.65, 102.0, 7.5, 0.7, 700.0, 1.8, 8.60),
    _row("BiCMOS uP (0.7 um)", ProductClass.MICROPROCESSOR,
         3.1e6, 0.7, 170.0, 7.5, 0.7, 900.0, 1.8, 32.60),
    _row("CMOS uP (1.2M)", ProductClass.MICROPROCESSOR,
         1.2e6, 0.65, 250.0, 7.5, 0.7, 700.0, 1.8, 21.10),
    _row("BiCMOS video signal processor", ProductClass.SIGNAL_PROCESSOR,
         0.91e6, 0.8, 400.0, 7.5, 0.7, 1500.0, 1.8, 115.00),
    _row("SRAM 1Mb", ProductClass.SRAM,
         6.2e6, 0.35, 36.0, 7.5, 0.9, 500.0, 1.8, 0.93),
    _row("DRAM 4Mb", ProductClass.DRAM,
         4.1e6, 0.6, 35.0, 7.5, 0.9, 400.0, 1.8, 1.08),
    _row("DRAM 256Mb", ProductClass.DRAM,
         264e6, 0.25, 29.0, 7.5, 0.9, 600.0, 1.8, 1.31),
    _row("DRAM 256Mb (8-inch, low yield)", ProductClass.DRAM,
         264e6, 0.25, 29.0, 10.0, 0.7, 600.0, 1.8, 2.18),
    _row("Gate array 53kg", ProductClass.GATE_ARRAY,
         40e3, 0.8, 500.0, 7.5, 0.7, 1200.0, 1.8, 43.10),
    _row("SOG 177kg", ProductClass.SEA_OF_GATES,
         354e3, 0.8, 245.0, 7.5, 0.7, 1200.0, 1.8, 51.10, reconstructed=True),
    _row("PLD 1.2kg", ProductClass.PLD,
         7.2e3, 0.8, 2600.0, 7.5, 0.7, 1300.0, 1.8, 240.00),
)


def catalog_by_class(product_class: ProductClass) -> list[ProductSpec]:
    """All catalog rows of one product class."""
    return [p for p in PRODUCT_CATALOG if p.product_class is product_class]


def memory_vs_logic_cost_gap() -> float:
    """Ratio of the cheapest published non-memory C_tr to the cheapest memory one.

    The paper's first Table-3 conclusion: memory cost per transistor is
    "very different and much lower than for all other IC types."
    """
    memory = [p.published_ctr_microdollars for p in PRODUCT_CATALOG
              if p.product_class.has_redundancy
              and p.published_ctr_microdollars is not None]
    non_memory = [p.published_ctr_microdollars for p in PRODUCT_CATALOG
                  if not p.product_class.has_redundancy
                  and p.published_ctr_microdollars is not None]
    return min(non_memory) / min(memory)
