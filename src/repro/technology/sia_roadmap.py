"""The SIA 1993 technology roadmap — reference [17] of the paper.

The paper leans on "SIA Technology Road Map — Workshop Conclusions;
November 1993" for its generation-by-generation expectations.  This
module carries the widely published headline rows of that roadmap as
typed records and provides interpolation against our parametric
:class:`~repro.technology.roadmap.TechnologyRoadmap` — the benches use
it to check that the reconstruction tracks the planning document the
industry actually steered by.

Row values are the 1993 roadmap's published targets (first production
year per node, DRAM bits/chip, wafer diameter, expected fab cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_positive


@dataclass(frozen=True)
class SiaNode:
    """One generation row of the 1993 SIA roadmap."""

    feature_size_um: float
    first_production_year: int
    dram_bits_per_chip: float
    wafer_diameter_mm: int
    fab_cost_millions: float

    def __post_init__(self) -> None:
        require_positive("feature_size_um", self.feature_size_um)
        require_positive("dram_bits_per_chip", self.dram_bits_per_chip)
        if self.wafer_diameter_mm not in (100, 125, 150, 200, 300, 400):
            raise ParameterError(
                f"non-standard wafer diameter {self.wafer_diameter_mm} mm")
        require_positive("fab_cost_millions", self.fab_cost_millions)

    @property
    def wafer_radius_cm(self) -> float:
        """Wafer radius in centimeters."""
        return self.wafer_diameter_mm / 20.0


#: The 1993 SIA roadmap headline rows (0.35 µm through 0.10 µm).
SIA_1993_NODES: tuple[SiaNode, ...] = (
    SiaNode(0.35, 1995, 64e6, 200, 1500.0),
    SiaNode(0.25, 1998, 256e6, 200, 3000.0),
    SiaNode(0.18, 2001, 1e9, 300, 4000.0),
    SiaNode(0.13, 2004, 4e9, 300, 6000.0),
    SiaNode(0.10, 2007, 16e9, 400, 8000.0),
)


def node_for_feature_size(feature_size_um: float) -> SiaNode:
    """The roadmap node nearest (log scale) to a feature size."""
    require_positive("feature_size_um", feature_size_um)
    return min(SIA_1993_NODES,
               key=lambda n: abs(math.log(n.feature_size_um
                                          / feature_size_um)))


def dram_generation_cadence_years() -> float:
    """Mean years between successive roadmap nodes (the 3-year beat)."""
    years = [n.first_production_year for n in SIA_1993_NODES]
    gaps = [b - a for a, b in zip(years, years[1:])]
    return sum(gaps) / len(gaps)


def dram_bits_growth_per_node() -> float:
    """Mean DRAM capacity multiplier per node (the classic 4x/generation)."""
    bits = [n.dram_bits_per_chip for n in SIA_1993_NODES]
    ratios = [b / a for a, b in zip(bits, bits[1:])]
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def fab_cost_growth_per_node() -> float:
    """Mean fab-cost multiplier per node — the paper's megafab escalation."""
    costs = [n.fab_cost_millions for n in SIA_1993_NODES]
    ratios = [b / a for a, b in zip(costs, costs[1:])]
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def roadmap_agreement_with(parametric, *, tolerance_years: float = 2.5) -> bool:
    """Does a parametric TechnologyRoadmap hit the SIA production years?

    ``parametric`` is a :class:`~repro.technology.roadmap.
    TechnologyRoadmap`; each SIA node's feature size must map to a year
    within ``tolerance_years`` of the roadmap's first-production year.
    """
    require_positive("tolerance_years", tolerance_years)
    for node in SIA_1993_NODES:
        predicted = parametric.year_of_feature_size(node.feature_size_um)
        if abs(predicted - node.first_production_year) > tolerance_years:
            return False
    return True
