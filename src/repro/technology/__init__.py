"""Technology trends and product data: Figs. 1–4 and Tables 1–2.

* :mod:`~repro.technology.roadmap` — feature size vs. year (Fig. 1),
  die size vs. feature size (Fig. 3), process step counts and required
  defect densities per generation (Fig. 4).
* :mod:`~repro.technology.fabline` — fabline construction cost vs. year
  (Fig. 2) and the extraction of the paper's X parameter from it.
* :mod:`~repro.technology.density` — design density d_d: the Table 1
  functional-block data, the Table 2 product data, and estimators.
* :mod:`~repro.technology.products` — a typed catalog of the paper's
  product examples (DRAM, SRAM, µP, gate array, SOG, PLD).
"""

from .roadmap import TechnologyRoadmap, GENERATIONS_UM, die_area_trend_cm2
from .fabline import FabLine, FABLINE_COST_HISTORY, extract_cost_growth_rate
from .density import (
    DesignDensity,
    FUNCTIONAL_BLOCK_DENSITIES,
    PRODUCT_DENSITIES,
    density_from_area_and_count,
)
from .products import ProductClass, ProductSpec, PRODUCT_CATALOG
from .sia_roadmap import SIA_1993_NODES, SiaNode
from .scaling import (
    CONSTANT_VOLTAGE,
    DENNARD,
    ScalingRules,
    performance_per_dollar,
    tolerable_cost_increase,
)

__all__ = [
    "TechnologyRoadmap",
    "GENERATIONS_UM",
    "die_area_trend_cm2",
    "FabLine",
    "FABLINE_COST_HISTORY",
    "extract_cost_growth_rate",
    "DesignDensity",
    "FUNCTIONAL_BLOCK_DENSITIES",
    "PRODUCT_DENSITIES",
    "density_from_area_and_count",
    "ProductClass",
    "ProductSpec",
    "PRODUCT_CATALOG",
    "SiaNode",
    "SIA_1993_NODES",
    "ScalingRules",
    "DENNARD",
    "CONSTANT_VOLTAGE",
    "performance_per_dollar",
    "tolerable_cost_increase",
]
