"""Device scaling rules: the performance side of the shrink bargain.

Sec. III's warning is two-sided: "the transistor size decrease may not
provide simultaneous performance and cost gains."  The cost side is the
rest of this library; this module supplies the performance side — the
classical constant-field (Dennard) scaling rules of the paper's era —
so cost/performance trades can be stated in one place:

With linear shrink factor ``s = λ_new/λ_old < 1`` under constant field:

* gate delay scales by ``s``  (faster),
* per-transistor dynamic power by ``s²`` (with voltage scaled by s),
* power *density* stays constant,
* transistor density grows by ``1/s²``.

Real 1990s scaling was "generalized": voltage fell slower than s
(``voltage_exponent < 1``), so power density *rose* — the module lets
both regimes be expressed.  :func:`performance_per_dollar` joins this
to any cost-per-transistor figure to answer the paper's question
directly: does the shrink still pay in performance per dollar?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_positive


@dataclass(frozen=True)
class ScalingRules:
    """Generalized scaling between two nodes.

    Parameters
    ----------
    voltage_exponent:
        V ∝ λ^voltage_exponent.  1.0 is constant-field (Dennard);
        0.0 is constant-voltage (early-1990s reality for 5 V parts);
        values between interpolate.
    delay_exponent:
        Gate delay ∝ λ^delay_exponent; 1.0 classically.
    """

    voltage_exponent: float = 1.0
    delay_exponent: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.voltage_exponent <= 1.5:
            raise ParameterError(
                f"voltage_exponent out of range: {self.voltage_exponent}")
        require_positive("delay_exponent", self.delay_exponent)

    def _s(self, lam_new_um: float, lam_old_um: float) -> float:
        require_positive("lam_new_um", lam_new_um)
        require_positive("lam_old_um", lam_old_um)
        return lam_new_um / lam_old_um

    def delay_factor(self, lam_new_um: float, lam_old_um: float) -> float:
        """Gate delay ratio new/old (< 1 for a shrink)."""
        return self._s(lam_new_um, lam_old_um) ** self.delay_exponent

    def frequency_factor(self, lam_new_um: float, lam_old_um: float) -> float:
        """Clock frequency ratio new/old (> 1 for a shrink)."""
        return 1.0 / self.delay_factor(lam_new_um, lam_old_um)

    def voltage_factor(self, lam_new_um: float, lam_old_um: float) -> float:
        """Supply voltage ratio new/old."""
        return self._s(lam_new_um, lam_old_um) ** self.voltage_exponent

    def transistor_power_factor(self, lam_new_um: float,
                                lam_old_um: float) -> float:
        """Dynamic power per transistor, new/old: C·V²·f with C ∝ s.

        P ∝ s · (s^v)² · s^{−d}; Dennard (v = d = 1) gives s².
        """
        s = self._s(lam_new_um, lam_old_um)
        return (s
                * self.voltage_factor(lam_new_um, lam_old_um) ** 2
                * self.frequency_factor(lam_new_um, lam_old_um))

    def power_density_factor(self, lam_new_um: float,
                             lam_old_um: float) -> float:
        """Power per unit area, new/old.

        Transistor power / s²; exactly 1.0 under Dennard, > 1 when
        voltage lags the shrink — the era's looming thermal wall.
        """
        s = self._s(lam_new_um, lam_old_um)
        return self.transistor_power_factor(lam_new_um, lam_old_um) / (s * s)

    def throughput_factor(self, lam_new_um: float, lam_old_um: float) -> float:
        """Raw compute throughput per unit area, new/old: density × freq."""
        s = self._s(lam_new_um, lam_old_um)
        return self.frequency_factor(lam_new_um, lam_old_um) / (s * s)


#: Classical constant-field scaling.
DENNARD = ScalingRules(voltage_exponent=1.0)

#: Constant-voltage scaling (5 V era): fast but power-hungry.
CONSTANT_VOLTAGE = ScalingRules(voltage_exponent=0.0)


def performance_per_dollar(cost_per_transistor_old: float,
                           cost_per_transistor_new: float,
                           lam_old_um: float, lam_new_um: float,
                           rules: ScalingRules = DENNARD) -> float:
    """Ratio (new/old) of per-transistor throughput per dollar.

    Each transistor gets faster by the frequency factor while costing
    ``cost_new/cost_old`` as much; the ratio exceeding 1 means the
    shrink still pays *in performance per dollar* even if raw C_tr rose
    — quantifying how much Fig.-7-style cost increase performance can
    absorb before shrink becomes irrational.
    """
    require_positive("cost_per_transistor_old", cost_per_transistor_old)
    require_positive("cost_per_transistor_new", cost_per_transistor_new)
    freq_gain = rules.frequency_factor(lam_new_um, lam_old_um)
    cost_ratio = cost_per_transistor_new / cost_per_transistor_old
    return freq_gain / cost_ratio


def tolerable_cost_increase(lam_old_um: float, lam_new_um: float,
                            rules: ScalingRules = DENNARD) -> float:
    """Largest C_tr growth factor a shrink can sustain at parity.

    The cost increase at which performance-per-dollar is exactly flat:
    equal to the frequency gain.  Under the paper's Scenario #2 the
    measured cost growth can exceed this, making the shrink irrational
    even for performance-hungry products.
    """
    return rules.frequency_factor(lam_new_um, lam_old_um)
