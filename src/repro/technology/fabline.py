"""Fabline cost trend — Fig. 2 of the paper.

Fig. 2 plots the construction cost of a fabrication line (and the
manufacturing wafer cost) over time; the text's headline is that fab
cost grows exponentially, "estimated soon to reach 1 billion dollars
per fabline", and that the X extracted from this figure is 1.2–1.4 per
generation.  The figure's point data is not tabulated in the text, so
:data:`FABLINE_COST_HISTORY` reconstructs the well-documented industry
history the figure drew on (each point is the widely cited
order-of-magnitude cost of a new leading-edge fab in that year).

:func:`extract_cost_growth_rate` performs the extraction the paper
describes: fit the exponential trend and convert to a per-generation
multiplier.  Applied to the *wafer*-cost curve it lands in the paper's
quoted 1.2–1.4 band (eq. (3)'s X is a wafer-cost growth rate); applied
to the fabline-cost curve it gives ~1.8 — capital grows faster than
wafer cost because throughput grows too.  Both extractions are asserted
by ``benchmarks/bench_fig2_fab_cost.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..units import require_positive

#: Reconstructed Fig.-2 series: (year, leading-edge fabline cost, $M).
#: Sources: the industry history cited by the paper ([2,3,4,7]) — a new
#: fab cost ~$6M around 1970, ~$50M around 1980, ~$200-400M around
#: 1988-92, ~$1B projected mid-90s.
FABLINE_COST_HISTORY: tuple[tuple[float, float], ...] = (
    (1970.0, 6.0),
    (1975.0, 15.0),
    (1980.0, 50.0),
    (1983.0, 85.0),
    (1986.0, 150.0),
    (1989.0, 250.0),
    (1992.0, 450.0),
    (1995.0, 1000.0),
)

#: Reconstructed Fig.-2 wafer-cost series: (year, cost of a leading-edge
#: production wafer, $).  Anchored on the paper's quotes: $500–800 for a
#: 6-inch 1 µm wafer circa 1989–90 [12, 13]; the earlier points follow
#: the gentle ~1.3×-per-generation climb the paper reads off Fig. 2.
#: (The $1300 quote for 0.8 µm 3-metal [14] is a premium process above
#: this generic trend.)
WAFER_COST_HISTORY: tuple[tuple[float, float], ...] = (
    (1977.0, 150.0),
    (1980.0, 200.0),
    (1983.0, 270.0),
    (1986.0, 360.0),
    (1989.0, 500.0),
    (1992.0, 700.0),
    (1995.0, 950.0),
)


@dataclass(frozen=True)
class FabLine:
    """A fabrication line as a capital asset.

    Captures the quantities Sec. III.A needs: construction cost,
    wafer-start capacity, and straight-line depreciation — the dominant
    component of the "cost of ownership" that the product-mix model
    (:mod:`repro.manufacturing.product_mix`) spreads over wafers.
    """

    construction_cost_dollars: float
    wafer_starts_per_month: float
    depreciation_years: float = 5.0
    operating_cost_per_year: float = 0.0

    def __post_init__(self) -> None:
        require_positive("construction_cost_dollars", self.construction_cost_dollars)
        require_positive("wafer_starts_per_month", self.wafer_starts_per_month)
        require_positive("depreciation_years", self.depreciation_years)
        if self.operating_cost_per_year < 0:
            raise ParameterError("operating_cost_per_year must be >= 0")

    @property
    def annualized_cost_dollars(self) -> float:
        """Depreciation plus operating cost per year."""
        return self.construction_cost_dollars / self.depreciation_years \
            + self.operating_cost_per_year

    def capital_cost_per_wafer(self, utilization: float = 1.0) -> float:
        """Ownership cost allocated to each wafer actually started.

        ``utilization`` is the fraction of capacity used; idle capacity
        still depreciates (the paper: "the cost of ownership ... may be
        the same for 'active' and 'inactive' equipment usage"), so cost
        per wafer scales as 1/utilization.
        """
        if not 0.0 < utilization <= 1.0:
            raise ParameterError(f"utilization must be in (0, 1], got {utilization}")
        wafers_per_year = self.wafer_starts_per_month * 12.0 * utilization
        return self.annualized_cost_dollars / wafers_per_year


def extract_cost_growth_rate(history: tuple[tuple[float, float], ...] = FABLINE_COST_HISTORY,
                             *, years_per_generation: float = 3.0) -> float:
    """Extract the paper's X from a fab-cost-vs-year series.

    Least-squares fit of ``log(cost)`` against year gives the continuous
    growth rate; X is the multiplier accumulated over one technology
    generation (3 years in this era).  The paper reads 1.2–1.4 off its
    Fig. 2 this way.
    """
    if len(history) < 2:
        raise ParameterError("need at least two (year, cost) points")
    require_positive("years_per_generation", years_per_generation)
    years = np.array([y for y, _ in history], dtype=float)
    costs = np.array([c for _, c in history], dtype=float)
    if np.any(costs <= 0):
        raise ParameterError("fab costs must be positive")
    slope, _intercept = np.polyfit(years, np.log(costs), 1)
    return float(math.exp(slope * years_per_generation))
