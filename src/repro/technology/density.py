"""Design density d_d — Tables 1 and 2 of the paper.

Design density is the paper's layout-efficiency measure: the number of
minimum-feature-size squares (λ²) of die area consumed per "average"
transistor (eq. 5).  Dense memory arrays sit near d_d ≈ 20–50; random
logic in microprocessors near 100–400; programmable logic can exceed
2500.  Tables 1 and 2 tabulate measured densities; this module carries
that data verbatim and provides the estimator used to produce it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..units import require_positive


@dataclass(frozen=True)
class DesignDensity:
    """A measured design density record.

    ``d_d`` is in λ² per transistor; ``area_mm2``/``n_transistors`` are
    kept when the source tabulated them (Table 1 does, Table 2 does not).
    """

    name: str
    d_d: float
    feature_size_um: float | None = None
    area_mm2: float | None = None
    n_transistors: float | None = None

    def __post_init__(self) -> None:
        require_positive("d_d", self.d_d)
        if self.feature_size_um is not None:
            require_positive("feature_size_um", self.feature_size_um)
        if self.area_mm2 is not None:
            require_positive("area_mm2", self.area_mm2)
        if self.n_transistors is not None:
            require_positive("n_transistors", self.n_transistors)


def density_from_area_and_count(area_mm2: float, n_transistors: float,
                                feature_size_um: float) -> float:
    """Eq. (5) inverted: ``d_d = A_ch / (N_tr · λ²)``.

    ``area_mm2`` in mm², λ in microns; the result is dimensionless
    (λ² squares per transistor).  This is exactly how Tables 1 and 2
    were computed from published die photographs.
    """
    require_positive("area_mm2", area_mm2)
    require_positive("n_transistors", n_transistors)
    require_positive("feature_size_um", feature_size_um)
    area_um2 = area_mm2 * 1.0e6
    return area_um2 / (n_transistors * feature_size_um ** 2)


def _block(name: str, area_mm2: float, n_tr: float, d_d: float,
           feature_size_um: float) -> DesignDensity:
    return DesignDensity(name=name, d_d=d_d, feature_size_um=feature_size_um,
                         area_mm2=area_mm2, n_transistors=n_tr)


#: Table 1 — design densities of µP functional blocks [22].  The source
#: design is the 3-million-transistor microprocessor of ISSCC'93 [22],
#: a 0.8 µm process (the feature size is needed to recompute d_d from
#: the tabulated areas/counts; 0.8 µm makes all six rows consistent).
TABLE1_FEATURE_SIZE_UM = 0.8

FUNCTIONAL_BLOCK_DENSITIES: tuple[DesignDensity, ...] = (
    _block("I-cache", 33.2, 1200e3, 43.2, TABLE1_FEATURE_SIZE_UM),
    _block("D-cache", 35.7, 1100e3, 50.7, TABLE1_FEATURE_SIZE_UM),
    _block("F. point unit", 45.9, 323e3, 222.3, TABLE1_FEATURE_SIZE_UM),
    _block("Integer unit", 38.3, 232e3, 257.9, TABLE1_FEATURE_SIZE_UM),
    _block("MMU", 20.4, 118e3, 270.5, TABLE1_FEATURE_SIZE_UM),
    _block("Bus unit", 12.7, 50e3, 399.0, TABLE1_FEATURE_SIZE_UM),
)


def _product(name: str, feature_size_um: float, d_d: float) -> DesignDensity:
    return DesignDensity(name=name, d_d=d_d, feature_size_um=feature_size_um)


#: Table 2 — design densities for a spectrum of ICs [23, 24], verbatim.
PRODUCT_DENSITIES: tuple[DesignDensity, ...] = (
    _product("uP, BiCMOS, 3M", 0.3, 907.95),
    _product("uP, CMOS, 3M, Alpha21064", 0.68, 250.13),
    _product("uP, CMOS, 2M, R4400SC", 0.6, 224.64),
    _product("uP, CMOS, 3M, PA7100", 0.8, 370.66),
    _product("uP, BiCMOS, 3M, Pentium", 0.8, 149.11),
    _product("uP, CMOS, 4M, PowerPC601", 0.65, 102.28),
    _product("uP, BiCMOS, 3M, 2P, SuperSpark", 0.7, 168.53),
    _product("uP, CMOS, 2M, 68040", 0.65, 249.23),
    _product("1Mb SRAM, 2M, 2P", 0.35, 36.00),
    _product("16Mb SRAM, 2M, 4P", 0.25, 17.80),
    _product("64Mb DRAM, 2M", 0.4, 22.29),
    _product("256Mb DRAM, 3M", 0.25, 20.18),
    _product("GateArray, 53Kg, BiCMOS, 50%", 0.8, 507.66),
    _product("GateArray, BiCMOS", 0.5, 403.20),
    _product("SOG, 177Kg, 35-70%, CMOS, 3M", 0.8, 249.44),
    _product("SOG, 235Kg, 70%, CMOS, 3M", 0.8, 117.19),
    _product("PLD, 1.2Kg, EEPROM, 2M, 2P", 0.8, 2631.04),
)


def table1_recomputed() -> list[dict]:
    """Recompute Table 1's d_d column from its area/count columns.

    Returns one dict per block with both the published and recomputed
    density — the Table-1 bench prints these side by side; agreement
    validates eq. (5)'s bookkeeping and our 0.8 µm attribution.
    """
    rows = []
    for block in FUNCTIONAL_BLOCK_DENSITIES:
        assert block.area_mm2 is not None and block.n_transistors is not None
        recomputed = density_from_area_and_count(
            block.area_mm2, block.n_transistors, TABLE1_FEATURE_SIZE_UM)
        rows.append({
            "name": block.name,
            "area_mm2": block.area_mm2,
            "n_transistors": block.n_transistors,
            "d_d_published": block.d_d,
            "d_d_recomputed": recomputed,
        })
    return rows


def density_class(d_d: float) -> str:
    """Coarse classification of a density value, per the paper's narrative.

    Memories pack below ~60 λ²/tr, custom logic runs ~100–500, and
    programmable fabrics pay an order of magnitude more.
    """
    require_positive("d_d", d_d)
    if d_d < 60.0:
        return "memory"
    if d_d <= 500.0:
        return "logic"
    if d_d <= 1500.0:
        return "semi-custom"
    return "programmable"
